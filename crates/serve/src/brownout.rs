//! Degrade-instead-of-shed overload control.
//!
//! When the admission queue backs up, hard shedding trades availability
//! for nothing: the client gets an `overloaded` error and retries. The
//! brownout controller instead trades *plan quality* for throughput — the
//! paper's own observation that near-optimal strategies (greedy,
//! left-deep) cost orders of magnitude less to find than the optimum.
//! Under load it pins the degradation ladder's entry rung so requests are
//! cheap by construction:
//!
//! * **normal** — full ladder, caller's own budget;
//! * **reduced-dp** — skip exhaustive enumeration, halve the deadline,
//!   cap the memo (queue ≥ the enter-DP threshold);
//! * **greedy-only** — skip the DPs entirely (queue ≥ the enter-greedy
//!   threshold, or the server actually shed — the strongest signal).
//!
//! Transitions are hysteretic: escalation is immediate, de-escalation
//! needs [`BrownoutConfig::exit_streak`] consecutive observations at or
//! below the exit threshold with no fresh sheds, stepping down one level
//! at a time. Observations are counts, not clock reads, so controller
//! behavior is deterministic for a fixed observation sequence.
//!
//! Hard shed remains the last rung: brownout lowers the chance the queue
//! fills, it never refuses work itself.

use std::sync::Mutex;

use mjoin_obs::{incr, Counter};

/// How far the server has browned out. Ordered: higher = more degraded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Full ladder, untouched budget.
    #[default]
    Normal,
    /// Ladder enters at the DP rung with a tightened budget.
    ReducedDp,
    /// Ladder enters at the greedy rung with a hard-tightened budget.
    GreedyOnly,
}

impl BrownoutLevel {
    /// The wire name carried to the engine in `EngineRequest::brownout`;
    /// `None` at `Normal` (requests stay byte-identical to a daemon
    /// without brownout).
    pub fn wire_name(self) -> Option<&'static str> {
        match self {
            BrownoutLevel::Normal => None,
            BrownoutLevel::ReducedDp => Some("reduced-dp"),
            BrownoutLevel::GreedyOnly => Some("greedy-only"),
        }
    }

    /// The name shown in `stats` (`normal` included).
    pub fn stats_name(self) -> &'static str {
        self.wire_name().unwrap_or("normal")
    }

    fn step_down(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::GreedyOnly => BrownoutLevel::ReducedDp,
            _ => BrownoutLevel::Normal,
        }
    }
}

/// Controller thresholds. Depth thresholds are percent of the queue cap.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Master switch; disabled means [`BrownoutController::observe`]
    /// always answers `Normal` and touches no state.
    pub enabled: bool,
    /// Queue-depth percent at which `ReducedDp` engages.
    pub enter_dp_pct: usize,
    /// Queue-depth percent at which `GreedyOnly` engages.
    pub enter_greedy_pct: usize,
    /// Queue-depth percent at or below which an observation counts toward
    /// de-escalation.
    pub exit_pct: usize,
    /// Consecutive calm observations required to step down one level.
    pub exit_streak: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enabled: false,
            enter_dp_pct: 50,
            enter_greedy_pct: 75,
            exit_pct: 25,
            exit_streak: 16,
        }
    }
}

#[derive(Default)]
struct Inner {
    level: BrownoutLevel,
    below_streak: u32,
    last_shed_total: u64,
    entered: u64,
}

/// The load-tracking state machine. One per server; workers call
/// [`BrownoutController::observe`] once per job they pick up.
pub struct BrownoutController {
    config: BrownoutConfig,
    inner: Mutex<Inner>,
}

impl BrownoutController {
    /// A controller with the given thresholds.
    pub fn new(config: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Feeds one load observation (current queue depth, queue cap, and
    /// the monotone total of global sheds so far) and returns the level
    /// to serve the next job at.
    pub fn observe(&self, depth: usize, cap: usize, shed_total: u64) -> BrownoutLevel {
        if !self.config.enabled {
            return BrownoutLevel::Normal;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let pct = depth * 100 / cap.max(1);
        let fresh_shed = shed_total > inner.last_shed_total;
        inner.last_shed_total = shed_total;
        let target = if pct >= self.config.enter_greedy_pct || fresh_shed {
            BrownoutLevel::GreedyOnly
        } else if pct >= self.config.enter_dp_pct {
            BrownoutLevel::ReducedDp
        } else {
            BrownoutLevel::Normal
        };
        if target > inner.level {
            inner.level = target;
            inner.below_streak = 0;
            inner.entered += 1;
            incr(Counter::ServeBrownoutEntered, 1);
        } else if inner.level > BrownoutLevel::Normal && pct <= self.config.exit_pct && !fresh_shed
        {
            inner.below_streak += 1;
            if inner.below_streak >= self.config.exit_streak {
                inner.level = inner.level.step_down();
                inner.below_streak = 0;
            }
        } else {
            inner.below_streak = 0;
        }
        inner.level
    }

    /// The current level, without feeding an observation.
    pub fn level(&self) -> BrownoutLevel {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).level
    }

    /// Upward transitions so far.
    pub fn entered(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).entered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutConfig {
            enabled: true,
            exit_streak: 3,
            ..BrownoutConfig::default()
        })
    }

    #[test]
    fn disabled_controller_is_inert() {
        let c = BrownoutController::new(BrownoutConfig::default());
        assert_eq!(c.observe(100, 100, 50), BrownoutLevel::Normal);
        assert_eq!(c.entered(), 0);
    }

    #[test]
    fn escalates_immediately_on_depth() {
        let c = controller();
        assert_eq!(c.observe(10, 100, 0), BrownoutLevel::Normal);
        assert_eq!(c.observe(50, 100, 0), BrownoutLevel::ReducedDp);
        assert_eq!(c.observe(80, 100, 0), BrownoutLevel::GreedyOnly);
        assert_eq!(c.entered(), 2);
    }

    #[test]
    fn a_fresh_shed_forces_greedy_only() {
        let c = controller();
        assert_eq!(c.observe(5, 100, 1), BrownoutLevel::GreedyOnly);
    }

    #[test]
    fn exit_needs_a_calm_streak_and_steps_down_one_level() {
        let c = controller();
        assert_eq!(c.observe(90, 100, 0), BrownoutLevel::GreedyOnly);
        // Mid-range depth neither escalates nor counts as calm.
        assert_eq!(c.observe(40, 100, 0), BrownoutLevel::GreedyOnly);
        // Two calm ticks are not enough (streak = 3)…
        assert_eq!(c.observe(10, 100, 0), BrownoutLevel::GreedyOnly);
        assert_eq!(c.observe(10, 100, 0), BrownoutLevel::GreedyOnly);
        // …and a shed resets the streak.
        assert_eq!(c.observe(10, 100, 1), BrownoutLevel::GreedyOnly);
        for _ in 0..2 {
            assert_eq!(c.observe(10, 100, 1), BrownoutLevel::GreedyOnly);
        }
        assert_eq!(c.observe(10, 100, 1), BrownoutLevel::ReducedDp);
        // Another full streak reaches Normal.
        for _ in 0..2 {
            assert_eq!(c.observe(0, 100, 1), BrownoutLevel::ReducedDp);
        }
        assert_eq!(c.observe(0, 100, 1), BrownoutLevel::Normal);
    }
}
