//! The serve wire protocol: newline-delimited JSON, one document per
//! request and exactly one document per response.
//!
//! A request is a JSON object on a single line:
//!
//! ```text
//! {"id": 1, "op": "optimize", "db": "relation AB\n1 10\nrelation BC\n10 5\n",
//!  "space": "all", "timeout_ms": 250}
//! ```
//!
//! `op` is one of `optimize`, `execute`, `query`, `ping`, `stats`,
//! `shutdown`. `db` (the database file text, required for
//! `optimize`/`execute`/`query`), `query` (the DSL text, required for
//! `query`), `space`, `timeout_ms`, `max_memo_entries` and `max_tuples`
//! mirror the CLI's positional arguments and guard flags. `id` is echoed verbatim in
//! the response so clients can pipeline. The optional `client` string
//! names the tenant for fair queuing and per-client quotas; requests
//! without one share the `anon` tenant.
//!
//! Every response is one compact JSON line: either
//! `{"id":…,"ok":true,…}` with op-specific fields, or
//! `{"id":…,"ok":false,"error":{"kind":…,"message":…}}` where `kind` is a
//! closed vocabulary (`invalid_request`, `too_large`, `overloaded`,
//! `shutting_down`, `budget_exceeded`, `cancelled`, `internal`). Shed
//! responses add a `retry_after_ms` hint.

use mjoin_guard::{failpoints, MjoinError};
use mjoin_obs::{json, Json};

use crate::EngineResponse;

/// A decoded request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation value, echoed in the response.
    pub id: Option<Json>,
    /// The operation: `optimize`, `execute`, `query`, `ping`, `stats`,
    /// `shutdown`.
    pub op: String,
    /// Database file text (the CLI's input format).
    pub db: String,
    /// Query-DSL text (required for the `query` op, absent otherwise).
    pub query: Option<String>,
    /// Search-space name, as the CLI accepts it (`all`, `nocp`, …).
    pub space: Option<String>,
    /// Per-request wall-clock deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request memo-entry cap.
    pub max_memo_entries: Option<u64>,
    /// Per-request intermediate-tuple cap.
    pub max_tuples: Option<u64>,
    /// Tenant identity for fair queuing and quotas; absent requests share
    /// the `anon` tenant.
    pub client: Option<String>,
}

/// Longest accepted `client` value: tenant names key per-client state, so
/// they must stay bounded.
pub const MAX_CLIENT_LEN: usize = 128;

fn invalid(msg: impl Into<String>) -> MjoinError {
    MjoinError::InvalidScheme(msg.into())
}

fn opt_u64(doc: &Json, field: &str) -> Result<Option<u64>, MjoinError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("field {field:?} must be a non-negative integer"))),
    }
}

fn opt_str(doc: &Json, field: &str) -> Result<Option<String>, MjoinError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("field {field:?} must be a string"))),
    }
}

/// Decodes one request line. Guarded by the `serve::decode` failpoint;
/// malformed input surfaces as [`MjoinError::InvalidScheme`], never a
/// panic.
pub fn decode_line(line: &str) -> Result<Request, MjoinError> {
    failpoints::hit("serve::decode")?;
    let doc = json::parse(line).map_err(|e| invalid(format!("malformed request JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(invalid("request must be a JSON object"));
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("request needs a string \"op\" field"))?
        .to_string();
    let db = match opt_str(&doc, "db")? {
        Some(s) => s,
        None if matches!(op.as_str(), "optimize" | "execute" | "query") => {
            return Err(invalid(format!("op {op:?} needs a string \"db\" field")));
        }
        None => String::new(),
    };
    let query = match opt_str(&doc, "query")? {
        None if op == "query" => {
            return Err(invalid("op \"query\" needs a string \"query\" field"));
        }
        q => q,
    };
    let client = match opt_str(&doc, "client")? {
        Some(c) if c.is_empty() => {
            return Err(invalid("field \"client\" must be a non-empty string"));
        }
        Some(c) if c.len() > MAX_CLIENT_LEN => {
            return Err(invalid(format!(
                "field \"client\" exceeds {MAX_CLIENT_LEN} bytes"
            )));
        }
        c => c,
    };
    Ok(Request {
        id: doc.get("id").cloned(),
        op,
        db,
        query,
        space: opt_str(&doc, "space")?,
        timeout_ms: opt_u64(&doc, "timeout_ms")?,
        max_memo_entries: opt_u64(&doc, "max_memo_entries")?,
        max_tuples: opt_u64(&doc, "max_tuples")?,
        client,
    })
}

fn id_json(id: Option<&Json>) -> Json {
    id.cloned().unwrap_or(Json::Null)
}

fn finish(doc: Json) -> String {
    let mut s = doc.to_compact_string();
    s.push('\n');
    s
}

/// Renders an error response line.
pub fn error_line(
    id: Option<&Json>,
    kind: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut err = vec![
        ("kind", Json::Str(kind.to_string())),
        ("message", Json::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        err.push(("retry_after_ms", Json::U64(ms)));
    }
    finish(Json::obj(vec![
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        ("error", Json::obj(err)),
    ]))
}

/// Renders a successful engine response line.
pub fn ok_line(id: Option<&Json>, op: &str, resp: &EngineResponse, cached: bool) -> String {
    let mut fields = vec![
        ("id", id_json(id)),
        ("ok", Json::Bool(true)),
        ("op", Json::Str(op.to_string())),
        ("cached", Json::Bool(cached)),
        ("output", Json::Str(resp.output.clone())),
    ];
    for (k, v) in &resp.extra {
        fields.push((k, v.clone()));
    }
    finish(Json::obj(fields))
}

/// Renders a successful control-op response line (`ping`, `shutdown`),
/// optionally with extra fields (`stats`).
pub fn ok_control_line(id: Option<&Json>, op: &str, extra: Vec<(&str, Json)>) -> String {
    let mut fields = vec![
        ("id", id_json(id)),
        ("ok", Json::Bool(true)),
        ("op", Json::Str(op.to_string())),
    ];
    fields.extend(extra);
    finish(Json::obj(fields))
}

/// Maps a typed engine error onto the wire error vocabulary.
pub fn kind_of(e: &MjoinError) -> &'static str {
    match e {
        MjoinError::BudgetExceeded { .. } => "budget_exceeded",
        MjoinError::Cancelled => "cancelled",
        MjoinError::InvalidScheme(_) => "invalid_request",
        // A query that fails to parse or lower is the client's input, not
        // a server fault.
        MjoinError::InvalidQuery(_) => "invalid_request",
        MjoinError::Internal(_) => "internal",
        // A corrupt persistent store is a server-side condition, never the
        // client's request.
        MjoinError::CorruptStore(_) => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_request() {
        let r = decode_line(
            r#"{"id": 7, "op": "optimize", "db": "relation AB\n", "space": "nocp", "timeout_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(r.op, "optimize");
        assert_eq!(r.db, "relation AB\n");
        assert_eq!(r.space.as_deref(), Some("nocp"));
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.id, Some(Json::U64(7)));
    }

    #[test]
    fn control_ops_need_no_db() {
        assert!(decode_line(r#"{"op": "ping"}"#).is_ok());
        assert!(decode_line(r#"{"op": "stats"}"#).is_ok());
        let e = decode_line(r#"{"op": "optimize"}"#).unwrap_err();
        assert!(e.to_string().contains("db"), "{e}");
    }

    #[test]
    fn query_op_needs_db_and_query() {
        let r = decode_line(
            r#"{"op": "query", "db": "relation AB\n", "query": "SELECT * FROM AB"}"#,
        )
        .unwrap();
        assert_eq!(r.op, "query");
        assert_eq!(r.query.as_deref(), Some("SELECT * FROM AB"));
        let e = decode_line(r#"{"op": "query", "db": "relation AB\n"}"#).unwrap_err();
        assert!(e.to_string().contains("query"), "{e}");
        let e = decode_line(r#"{"op": "query", "query": "SELECT * FROM AB"}"#).unwrap_err();
        assert!(e.to_string().contains("db"), "{e}");
        assert_eq!(decode_line(r#"{"op": "ping"}"#).unwrap().query, None);
    }

    #[test]
    fn rejects_malformed_and_mistyped_input() {
        assert!(decode_line("not json").is_err());
        assert!(decode_line("[1,2]").is_err());
        assert!(decode_line(r#"{"db": "x"}"#).is_err());
        assert!(decode_line(r#"{"op": "optimize", "db": 3}"#).is_err());
        assert!(decode_line(r#"{"op": "ping", "timeout_ms": "soon"}"#).is_err());
    }

    #[test]
    fn client_field_is_validated() {
        let r = decode_line(r#"{"op": "ping", "client": "tenant-a"}"#).unwrap();
        assert_eq!(r.client.as_deref(), Some("tenant-a"));
        assert_eq!(decode_line(r#"{"op": "ping"}"#).unwrap().client, None);
        assert!(decode_line(r#"{"op": "ping", "client": ""}"#).is_err());
        assert!(decode_line(r#"{"op": "ping", "client": 7}"#).is_err());
        let long = format!(r#"{{"op": "ping", "client": "{}"}}"#, "x".repeat(200));
        assert!(decode_line(&long).is_err());
    }

    #[test]
    fn responses_are_single_parseable_lines() {
        let err = error_line(Some(&Json::U64(1)), "overloaded", "queue full", Some(50));
        assert!(err.ends_with('\n'));
        assert_eq!(err.matches('\n').count(), 1);
        let doc = json::parse(err.trim()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        let e = doc.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(e.get("retry_after_ms").and_then(Json::as_u64), Some(50));

        let ok = ok_line(
            None,
            "optimize",
            &EngineResponse {
                output: "plan: x\n".to_string(),
                extra: vec![("cost", Json::U64(11))],
            },
            true,
        );
        let doc = json::parse(ok.trim()).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("output").and_then(Json::as_str), Some("plan: x\n"));
        assert_eq!(doc.get("cost").and_then(Json::as_u64), Some(11));
    }
}
