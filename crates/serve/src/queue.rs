//! Multi-tenant bounded admission queue: per-client sub-queues drained by
//! deficit round-robin, with per-client quotas and rate limiting.
//!
//! Every job belongs to a client (requests without a `client` field share
//! the [`ANON_CLIENT`] tenant). Connection threads submit work with
//! [`Admission::try_push`], which never blocks; refusals are typed so the
//! caller can answer with the right error:
//!
//! * a client over its token-bucket rate ([`FairnessConfig::client_rps`])
//!   is refused with [`SubmitError::RateLimited`];
//! * a client over its in-queue quota
//!   ([`FairnessConfig::client_queue_cap`]) is refused with
//!   [`SubmitError::ClientQueueFull`] — its *own* quota, so a flooding
//!   tenant sheds against itself while light tenants keep their slots;
//! * a globally full queue refuses with [`SubmitError::Full`];
//! * a draining queue refuses with [`SubmitError::ShuttingDown`].
//!
//! Workers block in [`Admission::pop`], which drains clients by deficit
//! round-robin: each visit credits the client one quantum and serves jobs
//! while its deficit covers them. Jobs all cost one unit here, so DRR
//! degenerates to exact round-robin — one job per client per round — which
//! is the work-conserving, starvation-free schedule for unit work. With
//! both fairness knobs at 0 and a single (anon) tenant, drain order is
//! plain FIFO: byte-identical to the pre-fairness single-queue daemon.
//!
//! The rate limiter's clock is injectable ([`Admission::with_clock`]) so
//! tests drive token refill deterministically.

use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use mjoin_obs::{incr, Counter, Json};

use crate::EngineRequest;

/// The shared tenant for requests that carry no `client` field.
pub const ANON_CLIENT: &str = "anon";

/// DRR quantum, in job cost units. Jobs are unit-cost, so 1 means exactly
/// one job per client per round.
const QUANTUM: u64 = 1;

/// One request = 1000 milli-tokens; refill is `client_rps` milli-tokens
/// per millisecond, i.e. `client_rps` whole tokens per second.
const MILLI_PER_JOB: u64 = 1000;

/// One admitted request, carried from the connection thread to a worker.
#[derive(Debug)]
pub struct Job {
    /// The client's correlation id, echoed in the response.
    pub id: Option<Json>,
    /// The tenant this job is queued and accounted under.
    pub client: Arc<str>,
    /// The request, with `timeout_ms` still holding the *requested*
    /// deadline; the worker subtracts queue wait before running it.
    pub request: EngineRequest,
    /// Plan-cache key, when the engine deemed the request cacheable.
    pub key: Option<String>,
    /// When the job entered the queue — queue wait burns the deadline.
    pub enqueued: Instant,
    /// Channel back to the waiting connection thread (a rendered
    /// response line).
    pub respond: mpsc::Sender<String>,
}

/// Why a submit was refused (the job is handed back alongside).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The shared queue is at capacity: shed with `overloaded`.
    Full,
    /// The client's own sub-queue is at its quota: shed with `overloaded`
    /// against the client, not the server.
    ClientQueueFull,
    /// The client's token bucket is empty: shed with `overloaded` against
    /// the client's request rate.
    RateLimited,
    /// The server is draining: shed with `shutting_down`.
    ShuttingDown,
}

/// Per-client fairness knobs. Both default to 0 = disabled, which makes
/// the queue behave exactly like the original single FIFO.
#[derive(Clone, Copy, Debug, Default)]
pub struct FairnessConfig {
    /// Max jobs one client may have queued at once (0 = no per-client cap).
    pub client_queue_cap: usize,
    /// Sustained admissions per second per client, enforced by a token
    /// bucket holding one second of burst (0 = no rate limit).
    pub client_rps: u64,
}

/// Milliseconds-since-start clock, injectable for deterministic tests.
type ClockFn = dyn Fn() -> u64 + Send + Sync;

struct ClientState {
    jobs: VecDeque<Job>,
    /// DRR credit carried between rounds (always < QUANTUM between visits).
    deficit: u64,
    milli_tokens: u64,
    last_refill_ms: u64,
    admitted: u64,
    quota_shed: u64,
    rate_shed: u64,
}

impl ClientState {
    fn new(burst_milli: u64, now_ms: u64) -> ClientState {
        ClientState {
            jobs: VecDeque::new(),
            deficit: 0,
            milli_tokens: burst_milli,
            last_refill_ms: now_ms,
            admitted: 0,
            quota_shed: 0,
            rate_shed: 0,
        }
    }
}

/// A point-in-time copy of one client's accounting, for `stats`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientSnapshot {
    /// The client name.
    pub client: String,
    /// Jobs queued right now.
    pub queued: u64,
    /// Jobs ever admitted.
    pub admitted: u64,
    /// Submissions refused by the per-client queue quota.
    pub quota_shed: u64,
    /// Submissions refused by the per-client rate limit.
    pub rate_shed: u64,
}

struct State {
    clients: HashMap<Arc<str>, ClientState>,
    /// Active (non-empty) clients, in DRR visit order. Each non-empty
    /// client appears exactly once.
    ring: VecDeque<Arc<str>>,
    total: usize,
    /// Pops remaining before the scan has visited every active client
    /// once (a "round"). Purely for the `serve.drr_rounds` counter.
    round_left: usize,
    rounds: u64,
    shutting_down: bool,
}

/// The bounded multi-tenant queue shared by connection threads and the
/// worker pool.
pub struct Admission {
    state: Mutex<State>,
    ready: Condvar,
    cap: usize,
    fairness: FairnessConfig,
    clock: Box<ClockFn>,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Admission {
    /// A queue admitting at most `cap` pending jobs (min 1) across all
    /// clients, with `fairness` applied per client. The default clock is
    /// wall time since construction.
    pub fn new(cap: usize, fairness: FairnessConfig) -> Admission {
        let epoch = Instant::now();
        Admission::with_clock(
            cap,
            fairness,
            Box::new(move || u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX)),
        )
    }

    /// [`Admission::new`] with an injected millisecond clock, so tests
    /// drive token-bucket refill deterministically.
    pub fn with_clock(cap: usize, fairness: FairnessConfig, clock: Box<ClockFn>) -> Admission {
        Admission {
            state: Mutex::new(State {
                clients: HashMap::new(),
                ring: VecDeque::new(),
                total: 0,
                round_left: 0,
                rounds: 0,
                shutting_down: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            fairness,
            clock,
        }
    }

    /// The configured global capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Jobs currently waiting, across all clients.
    pub fn depth(&self) -> usize {
        lock(&self.state).total
    }

    /// Complete DRR rounds drained so far.
    pub fn rounds(&self) -> u64 {
        lock(&self.state).rounds
    }

    /// Per-client accounting, sorted by client name. Clients persist after
    /// their queues drain, so shed/admit history survives the storm that
    /// caused it.
    pub fn client_snapshots(&self) -> Vec<ClientSnapshot> {
        let st = lock(&self.state);
        let mut out: Vec<ClientSnapshot> = st
            .clients
            .iter()
            .map(|(name, c)| ClientSnapshot {
                client: name.to_string(),
                queued: c.jobs.len() as u64,
                admitted: c.admitted,
                quota_shed: c.quota_shed,
                rate_shed: c.rate_shed,
            })
            .collect();
        out.sort_by(|a, b| a.client.cmp(&b.client));
        out
    }

    /// Non-blocking submit: refuses instead of waiting, returning the job
    /// so the caller can shed it with a typed response. Checks run
    /// client-first — rate limit, then the client's queue quota, then the
    /// shared cap — so a flooding tenant is charged against its own
    /// limits before it can be blamed on the server.
    // The Err variant hands the whole Job back by design: a refused
    // request must still be answered, and the connection thread needs the
    // id/respond channel to do it. One refusal is never hot-path.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        let mut guard = lock(&self.state);
        let st = &mut *guard;
        if st.shutting_down {
            return Err((job, SubmitError::ShuttingDown));
        }
        let name = Arc::clone(&job.client);
        let burst_milli = (self.fairness.client_rps * MILLI_PER_JOB).max(MILLI_PER_JOB);
        let now_ms = if self.fairness.client_rps > 0 {
            (self.clock)()
        } else {
            0
        };
        let client = st
            .clients
            .entry(Arc::clone(&name))
            .or_insert_with(|| ClientState::new(burst_milli, now_ms));
        if self.fairness.client_rps > 0 {
            let elapsed = now_ms.saturating_sub(client.last_refill_ms);
            client.last_refill_ms = now_ms;
            client.milli_tokens = client
                .milli_tokens
                .saturating_add(elapsed.saturating_mul(self.fairness.client_rps))
                .min(burst_milli);
            if client.milli_tokens < MILLI_PER_JOB {
                client.rate_shed += 1;
                return Err((job, SubmitError::RateLimited));
            }
        }
        if self.fairness.client_queue_cap > 0
            && client.jobs.len() >= self.fairness.client_queue_cap
        {
            client.quota_shed += 1;
            return Err((job, SubmitError::ClientQueueFull));
        }
        if st.total >= self.cap {
            return Err((job, SubmitError::Full));
        }
        if self.fairness.client_rps > 0 {
            // The token is only spent on actual admission.
            client.milli_tokens -= MILLI_PER_JOB;
        }
        let was_empty = client.jobs.is_empty();
        client.jobs.push_back(job);
        client.admitted += 1;
        st.total += 1;
        if was_empty {
            st.ring.push_back(name);
        }
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once the queue is draining
    /// and empty (the worker should exit). Jobs come out in DRR order.
    pub fn pop(&self) -> Option<Job> {
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = Self::pop_locked(&mut st) {
                return Some(job);
            }
            if st.shutting_down {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn pop_locked(st: &mut State) -> Option<Job> {
        while let Some(name) = {
            st.round_left = st.round_left.min(st.ring.len());
            if st.round_left == 0 && !st.ring.is_empty() {
                // The scan is about to wrap past every active client.
                st.round_left = st.ring.len();
                st.rounds += 1;
                incr(Counter::ServeDrrRounds, 1);
            }
            st.ring.pop_front()
        } {
            st.round_left = st.round_left.saturating_sub(1);
            let Some(client) = st.clients.get_mut(&name) else {
                continue;
            };
            client.deficit += QUANTUM;
            if let Some(job) = client.jobs.pop_front() {
                client.deficit = client.deficit.saturating_sub(1);
                st.total -= 1;
                if client.jobs.is_empty() {
                    // Deficit never carries across an idle period —
                    // otherwise a client could bank credit while absent.
                    client.deficit = 0;
                } else {
                    st.ring.push_back(name);
                }
                return Some(job);
            }
            // An empty client should never be in the ring; self-heal.
            client.deficit = 0;
        }
        None
    }

    /// Flips to draining, wakes every worker, and hands back everything
    /// still queued so the caller can shed it with a typed response.
    pub fn begin_shutdown(&self) -> Vec<Job> {
        let mut guard = lock(&self.state);
        let st = &mut *guard;
        st.shutting_down = true;
        let mut drained = Vec::with_capacity(st.total);
        for name in st.ring.drain(..) {
            if let Some(client) = st.clients.get_mut(&name) {
                drained.extend(client.jobs.drain(..));
                client.deficit = 0;
            }
        }
        st.total = 0;
        st.round_left = 0;
        drop(guard);
        self.ready.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_for(client: &str) -> (Job, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: None,
                client: Arc::from(client),
                request: EngineRequest {
                    op: "optimize".to_string(),
                    db: String::new(),
                    query: None,
                    space: None,
                    timeout_ms: None,
                    max_memo_entries: None,
                    max_tuples: None,
                    brownout: None,
                },
                key: None,
                enqueued: Instant::now(),
                respond: tx,
            },
            rx,
        )
    }

    fn job() -> (Job, mpsc::Receiver<String>) {
        job_for(ANON_CLIENT)
    }

    #[test]
    fn sheds_when_full_and_returns_the_job() {
        let q = Admission::new(2, FairnessConfig::default());
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        let (j3, _r3) = job();
        assert!(q.try_push(j1).is_ok());
        assert!(q.try_push(j2).is_ok());
        let (_, e) = q.try_push(j3).unwrap_err();
        assert_eq!(e, SubmitError::Full);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_drains_and_unblocks_pop() {
        let q = std::sync::Arc::new(Admission::new(4, FairnessConfig::default()));
        let (j, _r) = job();
        q.try_push(j).unwrap();
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                // First pop gets the job, second blocks until shutdown.
                assert!(q.pop().is_some());
                assert!(q.pop().is_none());
            })
        };
        // Give the waiter time to drain the queue and block.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let orphans = q.begin_shutdown();
        assert!(orphans.is_empty());
        waiter.join().unwrap();
        let (j, _r) = job();
        let (_, e) = q.try_push(j).unwrap_err();
        assert_eq!(e, SubmitError::ShuttingDown);
    }

    #[test]
    fn shutdown_hands_back_queued_jobs() {
        let q = Admission::new(4, FairnessConfig::default());
        let (j1, _r1) = job_for("a");
        let (j2, _r2) = job_for("b");
        q.try_push(j1).unwrap();
        q.try_push(j2).unwrap();
        assert_eq!(q.begin_shutdown().len(), 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn single_tenant_drains_fifo() {
        let q = Admission::new(8, FairnessConfig::default());
        let mut receivers = Vec::new();
        for i in 0..5u64 {
            let (mut j, r) = job();
            j.id = Some(Json::U64(i));
            q.try_push(j).unwrap();
            receivers.push(r);
        }
        for i in 0..5u64 {
            assert_eq!(q.pop().unwrap().id, Some(Json::U64(i)));
        }
    }

    #[test]
    fn drr_interleaves_a_hog_with_light_clients() {
        let q = Admission::new(16, FairnessConfig::default());
        // Hog queues 6 jobs first; two light clients queue 2 each after.
        let mut rs = Vec::new();
        for _ in 0..6 {
            let (j, r) = job_for("hog");
            q.try_push(j).unwrap();
            rs.push(r);
        }
        for c in ["light-a", "light-b"] {
            for _ in 0..2 {
                let (j, r) = job_for(c);
                q.try_push(j).unwrap();
                rs.push(r);
            }
        }
        let order: Vec<String> = (0..10).map(|_| q.pop().unwrap().client.to_string()).collect();
        // Every light job drains within the first two rounds (positions
        // 0..6), not behind the hog's backlog.
        let light_done = order
            .iter()
            .enumerate()
            .filter(|(_, c)| c.starts_with("light"))
            .map(|(i, _)| i)
            .max()
            .unwrap();
        assert!(light_done <= 5, "light clients starved: {order:?}");
        assert_eq!(order.iter().filter(|c| *c == "hog").count(), 6);
    }

    #[test]
    fn client_queue_cap_sheds_the_hog_only() {
        let q = Admission::new(16, FairnessConfig {
            client_queue_cap: 2,
            client_rps: 0,
        });
        let (j1, _r1) = job_for("hog");
        let (j2, _r2) = job_for("hog");
        let (j3, _r3) = job_for("hog");
        q.try_push(j1).unwrap();
        q.try_push(j2).unwrap();
        let (_, e) = q.try_push(j3).unwrap_err();
        assert_eq!(e, SubmitError::ClientQueueFull);
        // A different client still has its full quota.
        let (j, _r) = job_for("light");
        assert!(q.try_push(j).is_ok());
        let snaps = q.client_snapshots();
        let hog = snaps.iter().find(|s| s.client == "hog").unwrap();
        assert_eq!(hog.quota_shed, 1);
        assert_eq!(hog.admitted, 2);
    }

    #[test]
    fn token_bucket_refills_on_the_injected_clock() {
        let now = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let clock = {
            let now = std::sync::Arc::clone(&now);
            Box::new(move || now.load(std::sync::atomic::Ordering::Relaxed))
        };
        let q = Admission::with_clock(
            64,
            FairnessConfig {
                client_queue_cap: 0,
                client_rps: 2,
            },
            clock,
        );
        // Burst = one second = 2 tokens; the third submit at t=0 is shed.
        let mut rs = Vec::new();
        for _ in 0..2 {
            let (j, r) = job_for("c");
            q.try_push(j).unwrap();
            rs.push(r);
        }
        let (j, _r) = job_for("c");
        let (_, e) = q.try_push(j).unwrap_err();
        assert_eq!(e, SubmitError::RateLimited);
        // 500 ms later one token (2 rps × 0.5 s) has refilled.
        now.store(500, std::sync::atomic::Ordering::Relaxed);
        let (j, r) = job_for("c");
        q.try_push(j).unwrap();
        rs.push(r);
        let (j, _r) = job_for("c");
        assert!(q.try_push(j).is_err());
        assert_eq!(q.client_snapshots()[0].rate_shed, 2);
    }
}
