//! Bounded admission queue with load shedding.
//!
//! Connection threads submit work with [`Admission::try_push`], which
//! never blocks: a full queue returns the job to the caller so it can
//! answer `overloaded` immediately instead of letting latency pile up
//! behind the workers. Workers block in [`Admission::pop`] until a job or
//! shutdown arrives; [`Admission::begin_shutdown`] drains everything still
//! queued (to be shed with `shutting_down`) and wakes every worker so
//! in-flight requests finish and the pool exits.

use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use mjoin_obs::Json;

use crate::EngineRequest;

/// One admitted request, carried from the connection thread to a worker.
#[derive(Debug)]
pub struct Job {
    /// The client's correlation id, echoed in the response.
    pub id: Option<Json>,
    /// The request, with `timeout_ms` still holding the *requested*
    /// deadline; the worker subtracts queue wait before running it.
    pub request: EngineRequest,
    /// Plan-cache key, when the engine deemed the request cacheable.
    pub key: Option<String>,
    /// When the job entered the queue — queue wait burns the deadline.
    pub enqueued: Instant,
    /// Channel back to the waiting connection thread (a rendered
    /// response line).
    pub respond: mpsc::Sender<String>,
}

/// Why a submit was refused (the job is handed back alongside).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity: shed with `overloaded`.
    Full,
    /// The server is draining: shed with `shutting_down`.
    ShuttingDown,
}

struct State {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// The bounded queue shared by connection threads and the worker pool.
pub struct Admission {
    state: Mutex<State>,
    ready: Condvar,
    cap: usize,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Admission {
    /// A queue admitting at most `cap` pending jobs (min 1).
    pub fn new(cap: usize) -> Admission {
        Admission {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        lock(&self.state).jobs.len()
    }

    /// Non-blocking submit: refuses instead of waiting when full or
    /// draining, returning the job so the caller can shed it.
    // The Err variant hands the whole Job back by design: a refused
    // request must still be answered, and the connection thread needs the
    // id/respond channel to do it. One refusal is never hot-path.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        let mut st = lock(&self.state);
        if st.shutting_down {
            return Err((job, SubmitError::ShuttingDown));
        }
        if st.jobs.len() >= self.cap {
            return Err((job, SubmitError::Full));
        }
        st.jobs.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once the queue is draining
    /// and empty (the worker should exit).
    pub fn pop(&self) -> Option<Job> {
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.shutting_down {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Flips to draining, wakes every worker, and hands back everything
    /// still queued so the caller can shed it with a typed response.
    pub fn begin_shutdown(&self) -> Vec<Job> {
        let mut st = lock(&self.state);
        st.shutting_down = true;
        let drained: Vec<Job> = st.jobs.drain(..).collect();
        drop(st);
        self.ready.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> (Job, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: None,
                request: EngineRequest {
                    op: "optimize".to_string(),
                    db: String::new(),
                    space: None,
                    timeout_ms: None,
                    max_memo_entries: None,
                    max_tuples: None,
                },
                key: None,
                enqueued: Instant::now(),
                respond: tx,
            },
            rx,
        )
    }

    #[test]
    fn sheds_when_full_and_returns_the_job() {
        let q = Admission::new(2);
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        let (j3, _r3) = job();
        assert!(q.try_push(j1).is_ok());
        assert!(q.try_push(j2).is_ok());
        let (_, e) = q.try_push(j3).unwrap_err();
        assert_eq!(e, SubmitError::Full);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_drains_and_unblocks_pop() {
        let q = std::sync::Arc::new(Admission::new(4));
        let (j, _r) = job();
        q.try_push(j).unwrap();
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                // First pop gets the job, second blocks until shutdown.
                assert!(q.pop().is_some());
                assert!(q.pop().is_none());
            })
        };
        // Give the waiter time to drain the queue and block.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let orphans = q.begin_shutdown();
        assert!(orphans.is_empty());
        waiter.join().unwrap();
        let (j, _r) = job();
        let (_, e) = q.try_push(j).unwrap_err();
        assert_eq!(e, SubmitError::ShuttingDown);
    }

    #[test]
    fn shutdown_hands_back_queued_jobs() {
        let q = Admission::new(4);
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        q.try_push(j1).unwrap();
        q.try_push(j2).unwrap();
        assert_eq!(q.begin_shutdown().len(), 2);
        assert_eq!(q.depth(), 0);
    }
}
