//! Capped, sharded cross-request plan cache.
//!
//! The concurrency shape mirrors `SharedOracle`'s sharded memo
//! (crates/cost/src/shared.rs): keys hash to one of up to 16 independent
//! shards so concurrent workers rarely contend on the same lock, and
//! insertion is first-writer-wins. Unlike the oracle memo, every shard
//! carries a hard entry cap with LRU-style eviction (a global logical
//! clock stamps each touch; the stalest entry in the full shard is
//! evicted), so the cache's total size can never exceed the configured
//! cap over an arbitrarily long soak run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::EngineResponse;

struct Entry {
    resp: EngineResponse,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
}

/// The cache. `new(0)` disables it (every insert is dropped).
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    caps: Vec<usize>,
    tick: AtomicU64,
}

fn lock(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PlanCache {
    /// A cache holding at most `cap` entries in total.
    pub fn new(cap: usize) -> PlanCache {
        // Small caps get fewer shards so per-shard caps stay meaningful;
        // the per-shard caps always sum to exactly `cap`.
        let shard_count = cap.clamp(1, 16);
        let caps: Vec<usize> = (0..shard_count)
            .map(|i| cap / shard_count + usize::from(i < cap % shard_count))
            .collect();
        PlanCache {
            shards: (0..shard_count).map(|_| Mutex::new(Shard::default())).collect(),
            caps,
            tick: AtomicU64::new(0),
        }
    }

    /// The configured total entry cap.
    pub fn cap(&self) -> usize {
        self.caps.iter().sum()
    }

    fn shard_of(&self, key: &str) -> usize {
        // FNV-1a, then the same Fibonacci spread SharedOracle uses.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<EngineResponse> {
        let mut shard = lock(&self.shards[self.shard_of(key)]);
        let entry = shard.entries.get_mut(key)?;
        entry.last_used = self.next_tick();
        Some(entry.resp.clone())
    }

    /// Inserts `key` (first writer wins), evicting the least-recently-used
    /// entries in its shard as needed. Returns how many were evicted.
    pub fn insert(&self, key: String, resp: EngineResponse) -> u64 {
        let idx = self.shard_of(&key);
        let cap = self.caps[idx];
        if cap == 0 {
            return 0;
        }
        let mut shard = lock(&self.shards[idx]);
        if shard.entries.contains_key(&key) {
            return 0;
        }
        let mut evicted = 0u64;
        while shard.entries.len() >= cap {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            shard.entries.remove(&victim);
            evicted += 1;
        }
        let last_used = self.next_tick();
        shard.entries.insert(key, Entry { resp, last_used });
        evicted
    }

    /// A copy of every cached `(key, response)` pair, sorted by key so the
    /// drain snapshot written to a persistent store is deterministic for a
    /// given cache content.
    pub fn export(&self) -> Vec<(String, EngineResponse)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            for (k, e) in &shard.entries {
                out.push((k.clone(), e.resp.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> EngineResponse {
        EngineResponse {
            output: tag.to_string(),
            extra: Vec::new(),
        }
    }

    #[test]
    fn round_trips_and_respects_first_writer_wins() {
        let c = PlanCache::new(8);
        assert_eq!(c.insert("k".into(), resp("a")), 0);
        assert_eq!(c.insert("k".into(), resp("b")), 0);
        assert_eq!(c.get("k").unwrap().output, "a");
        assert!(c.get("missing").is_none());
    }

    #[test]
    fn never_exceeds_the_cap_and_evicts_lru() {
        let cap = 4;
        let c = PlanCache::new(cap);
        let mut evictions = 0;
        for i in 0..64 {
            evictions += c.insert(format!("key-{i}"), resp("x"));
            assert!(c.len() <= cap, "len {} > cap {cap} at i={i}", c.len());
        }
        assert!(evictions >= 60 - cap as u64, "evictions: {evictions}");
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        // A single-shard cache makes the LRU order directly observable.
        let c = PlanCache::new(2);
        assert_eq!(c.shards.len(), 2);
        let c = PlanCache::new(1);
        c.insert("old".into(), resp("old"));
        c.insert("new".into(), resp("new"));
        assert!(c.get("old").is_none(), "old entry must have been evicted");
        assert_eq!(c.get("new").unwrap().output, "new");
    }

    #[test]
    fn zero_cap_disables_caching() {
        let c = PlanCache::new(0);
        assert_eq!(c.insert("k".into(), resp("a")), 0);
        assert!(c.get("k").is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.cap(), 0);
    }

    #[test]
    fn concurrent_hammering_stays_bounded() {
        let c = std::sync::Arc::new(PlanCache::new(16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        c.insert(format!("t{t}-k{i}"), resp("x"));
                        c.get(&format!("t{t}-k{}", i / 2));
                    }
                });
            }
        });
        assert!(c.len() <= 16, "len {}", c.len());
    }
}
