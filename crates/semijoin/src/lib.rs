//! Semijoin reduction and Yannakakis evaluation (paper Section 5).
//!
//! The paper's Section 5 connects condition `C4` (joins never shrink) to
//! *pairwise consistency*: a γ-acyclic pairwise-consistent database
//! satisfies `C4`, and for α-acyclic schemes the same holds under join-tree
//! connectivity. Pairwise consistency is established by **semijoin
//! reduction**; this crate provides:
//!
//! * [`is_pairwise_consistent`] — Beeri et al.'s consistency check over all
//!   linked pairs;
//! * [`full_reduce`] — the Bernstein–Chiu full reducer: an up-then-down
//!   pass of semijoins along a join tree, which makes an α-acyclic database
//!   pairwise consistent (and globally consistent);
//! * [`pairwise_consistent_fixpoint`] — the fallback for cyclic schemes:
//!   iterate pairwise semijoins to fixpoint;
//! * [`yannakakis`] — Yannakakis' algorithm: full reduction followed by a
//!   leaves-to-root linear join order. The paper asks whether this
//!   strategy is τ-optimal; the experiments measure it against the DP
//!   optimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mjoin_cost::{Database, ExactOracle};
use mjoin_guard::{failpoints, Guard, MjoinError};
use mjoin_hypergraph::JoinTree;
use mjoin_relation::{JoinAlgorithm, Relation};
use mjoin_strategy::Strategy;

/// Is every linked pair of relation states consistent
/// (`R[𝐑 ∩ 𝐑′] = R′[𝐑 ∩ 𝐑′]`)?
pub fn is_pairwise_consistent(db: &Database) -> bool {
    let n = db.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if db.scheme().scheme(i).intersects(db.scheme().scheme(j))
                && !db.state(i).consistent_with(db.state(j))
            {
                return false;
            }
        }
    }
    true
}

/// Cost accounting for a semijoin program (full reducer run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Semijoin operations executed (`2·(n − 1)` for a full reducer).
    pub semijoins: usize,
    /// Tuples deleted across all relations.
    pub tuples_removed: u64,
    /// Tuples examined (the sum of the reduced side's sizes before each
    /// semijoin) — the reducer's I/O-style cost.
    pub tuples_scanned: u64,
}

/// Bernstein–Chiu full reducer: semijoin every relation with its join-tree
/// children (leaves upward), then with its parent (root downward).
///
/// For an α-acyclic database this produces the canonical *reduced*
/// database: every relation equals the projection of the full join onto its
/// scheme, and the database is pairwise consistent.
pub fn full_reduce(db: &Database, tree: &JoinTree, root: usize) -> Database {
    full_reduce_with_stats(db, tree, root).0
}

/// [`full_reduce`] with cost accounting.
pub fn full_reduce_with_stats(
    db: &Database,
    tree: &JoinTree,
    root: usize,
) -> (Database, ReductionStats) {
    try_full_reduce_with_stats(db, tree, root, &Guard::unlimited())
        .expect("unlimited-guard reduction cannot fail")
}

/// [`full_reduce_with_stats`] under a budget: each semijoin is
/// checkpointed and its scanned tuples are charged to `guard`.
pub fn try_full_reduce_with_stats(
    db: &Database,
    tree: &JoinTree,
    root: usize,
    guard: &Guard,
) -> Result<(Database, ReductionStats), MjoinError> {
    failpoints::hit("semijoin::reduce")?;
    let mut out = db.clone();
    let mut stats = ReductionStats::default();
    let order = tree.reduction_order(root);
    let apply = |out: &mut Database,
                     target: usize,
                     with: usize,
                     stats: &mut ReductionStats|
     -> Result<(), MjoinError> {
        guard.checkpoint()?;
        let before = out.state(target).tau();
        guard.charge_tuples(before)?;
        let reduced = out.state(target).semijoin(out.state(with));
        stats.semijoins += 1;
        stats.tuples_scanned += before;
        stats.tuples_removed += before - reduced.tau();
        out.replace_state(target, reduced);
        Ok(())
    };
    // Upward: parent ⋉ child, children first.
    for &(child, parent) in &order {
        apply(&mut out, parent, child, &mut stats)?;
    }
    // Downward: child ⋉ parent, from the root back out.
    for &(child, parent) in order.iter().rev() {
        apply(&mut out, child, parent, &mut stats)?;
    }
    Ok((out, stats))
}

/// Iterates pairwise semijoins over all linked pairs until no relation
/// shrinks. Terminates (sizes are non-increasing); establishes pairwise
/// consistency on any scheme, cyclic or not — but unlike [`full_reduce`]
/// may leave globally dangling tuples on cyclic schemes.
pub fn pairwise_consistent_fixpoint(db: &Database) -> Database {
    try_pairwise_consistent_fixpoint(db, &Guard::unlimited())
        .expect("unlimited-guard reduction cannot fail")
}

/// [`pairwise_consistent_fixpoint`] under a budget: every pairwise
/// semijoin round is checkpointed, so a deadline interrupts even
/// slowly-converging fixpoints.
pub fn try_pairwise_consistent_fixpoint(
    db: &Database,
    guard: &Guard,
) -> Result<Database, MjoinError> {
    failpoints::hit("semijoin::reduce")?;
    let mut out = db.clone();
    let n = out.len();
    loop {
        let mut changed = false;
        for i in 0..n {
            guard.checkpoint()?;
            for j in 0..n {
                if i == j || !out.scheme().scheme(i).intersects(out.scheme().scheme(j)) {
                    continue;
                }
                let reduced = out.state(i).semijoin(out.state(j));
                if reduced.tau() < out.state(i).tau() {
                    out.replace_state(i, reduced);
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(out);
        }
    }
}

/// The output of [`yannakakis`].
#[derive(Clone, Debug)]
pub struct YannakakisOutput {
    /// The fully reduced database.
    pub reduced: Database,
    /// The linear leaves-to-root strategy executed on the reduced database.
    pub strategy: Strategy,
    /// The final join result (equal to evaluating the original database).
    pub result: Relation,
    /// τ of the strategy *measured on the reduced database*.
    pub cost: u64,
}

/// Yannakakis' algorithm for α-acyclic connected databases: full
/// reduction, then a leaves-to-root linear join. Returns `None` when the
/// scheme is cyclic or disconnected (no join tree).
pub fn yannakakis(db: &Database) -> Option<YannakakisOutput> {
    try_yannakakis(db, &Guard::unlimited()).expect("unlimited-guard evaluation cannot fail")
}

/// [`yannakakis`] under a budget: the reduction pass, the cost probe and
/// the final join pipeline all charge the same guard, so a deadline or
/// tuple cap interrupts the evaluation at the next kernel batch.
pub fn try_yannakakis(db: &Database, guard: &Guard) -> Result<Option<YannakakisOutput>, MjoinError> {
    let Some(tree) = JoinTree::build(db.scheme()) else {
        return Ok(None);
    };
    let root = 0;
    let (reduced, _) = try_full_reduce_with_stats(db, &tree, root, guard)?;
    // Join in reverse reduction order (root outward ⇒ each new relation is
    // tree-adjacent to the prefix, so the strategy is product-free).
    let mut order: Vec<usize> = vec![root];
    for &(child, _parent) in reduced_order_root_out(&tree, root).iter() {
        order.push(child);
    }
    let strategy = Strategy::left_deep(&order);
    let mut oracle = ExactOracle::with_guard(&reduced, guard.clone());
    let cost = strategy.try_cost(&mut oracle)?;
    let mut result = reduced.state(order[0]).clone();
    for &i in &order[1..] {
        result = result.natural_join_guarded(reduced.state(i), JoinAlgorithm::Hash, guard)?;
    }
    Ok(Some(YannakakisOutput {
        reduced,
        strategy,
        result,
        cost,
    }))
}

/// Root-outward edge order: reverse of the leaves-to-root reduction order.
fn reduced_order_root_out(tree: &JoinTree, root: usize) -> Vec<(usize, usize)> {
    let mut order = tree.reduction_order(root);
    order.reverse();
    order
}

/// Yannakakis' algorithm with **output projection**: computes
/// `π_output(⋈D)` for an α-acyclic connected database, projecting every
/// intermediate onto the attributes still needed (the output attributes
/// plus those shared with unjoined relations). This is the form whose
/// intermediates are polynomial in input + output size.
///
/// Returns `None` when the scheme has no join tree, or when `output` is
/// not a subset of the database's attributes.
pub fn yannakakis_project(
    db: &Database,
    output: mjoin_relation::AttrSet,
) -> Option<mjoin_relation::Relation> {
    let scheme = db.scheme();
    if !output.is_subset_of(scheme.attrs_of(scheme.full_set())) {
        return None;
    }
    let tree = JoinTree::build(scheme)?;
    let root = 0;
    let reduced = full_reduce(db, &tree, root);

    let mut acc = reduced.state(root).clone();
    let mut joined = mjoin_hypergraph::RelSet::singleton(root);
    let full = scheme.full_set();
    for (child, _parent) in reduced_order_root_out(&tree, root) {
        acc = acc.natural_join(reduced.state(child));
        joined.insert(child);
        // Project away attributes neither in the output nor shared with
        // any relation still to come.
        let pending = scheme.attrs_of(full.difference(joined));
        let keep = acc.scheme().intersect(output.union(pending));
        if !keep.is_empty() && keep != acc.scheme() {
            acc = acc.project(keep).expect("keep ⊆ scheme");
        }
    }
    Some(
        acc.project(output.intersect(acc.scheme()))
            .expect("output ⊆ final scheme after acyclic join"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_db() -> Database {
        Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![9, 99]]), // (9,99) dangles
            ("BC", vec![vec![10, 5], vec![20, 6], vec![77, 7]]), // (77,7) dangles
            ("CD", vec![vec![5, 0], vec![6, 1]]),
        ])
        .unwrap()
    }

    #[test]
    fn consistency_detection() {
        let db = chain_db();
        assert!(!is_pairwise_consistent(&db));
        let consistent = Database::from_specs(&[
            ("AB", vec![vec![1, 10]]),
            ("BC", vec![vec![10, 5]]),
        ])
        .unwrap();
        assert!(is_pairwise_consistent(&consistent));
    }

    #[test]
    fn full_reducer_establishes_consistency() {
        let db = chain_db();
        let tree = JoinTree::build(db.scheme()).unwrap();
        let reduced = full_reduce(&db, &tree, 0);
        assert!(is_pairwise_consistent(&reduced));
        // Dangling tuples removed, result preserved.
        assert_eq!(reduced.state(0).tau(), 2);
        assert_eq!(reduced.state(1).tau(), 2);
        assert_eq!(reduced.evaluate(), db.evaluate());
    }

    #[test]
    fn reduced_states_are_projections_of_the_result() {
        let db = chain_db();
        let tree = JoinTree::build(db.scheme()).unwrap();
        let reduced = full_reduce(&db, &tree, 0);
        let full = db.evaluate();
        for i in 0..db.len() {
            let proj = full.project(db.scheme().scheme(i)).unwrap();
            assert_eq!(reduced.state(i), &proj, "relation {i}");
        }
    }

    #[test]
    fn fixpoint_reduction_matches_full_reducer_on_acyclic() {
        let db = chain_db();
        let tree = JoinTree::build(db.scheme()).unwrap();
        let a = full_reduce(&db, &tree, 0);
        let b = pairwise_consistent_fixpoint(&db);
        for i in 0..db.len() {
            assert_eq!(a.state(i), b.state(i), "relation {i}");
        }
    }

    #[test]
    fn fixpoint_reduction_on_cyclic_scheme_terminates() {
        // Triangle with a globally dangling cycle of tuples.
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 2], vec![5, 6]]),
            ("BC", vec![vec![2, 3], vec![6, 7]]),
            ("CA", vec![vec![3, 1], vec![7, 9]]), // (7,9) breaks the 5-6-7 cycle
        ])
        .unwrap();
        let r = pairwise_consistent_fixpoint(&db);
        assert!(is_pairwise_consistent(&r));
        assert_eq!(r.evaluate(), db.evaluate());
    }

    #[test]
    fn yannakakis_produces_correct_result() {
        let db = chain_db();
        let out = yannakakis(&db).unwrap();
        assert_eq!(out.result, db.evaluate());
        assert!(out.strategy.is_linear());
        assert!(!out.strategy.uses_cartesian(db.scheme()));
        assert!(is_pairwise_consistent(&out.reduced));
    }

    #[test]
    fn yannakakis_none_for_cyclic() {
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 2]]),
            ("BC", vec![vec![2, 3]]),
            ("CA", vec![vec![3, 1]]),
        ])
        .unwrap();
        assert!(yannakakis(&db).is_none());
    }

    #[test]
    fn yannakakis_is_monotone_increasing_on_reduced_database() {
        // Section 5: after reduction, every step of a leaves-to-root join
        // over a consistent acyclic database only grows (each tuple extends).
        let db = chain_db();
        let out = yannakakis(&db).unwrap();
        let mut oracle = ExactOracle::new(&out.reduced);
        assert!(out.strategy.is_monotone_increasing(&mut oracle));
    }

    #[test]
    fn reduction_stats_account_for_every_semijoin() {
        let db = chain_db();
        let tree = JoinTree::build(db.scheme()).unwrap();
        let (reduced, stats) = full_reduce_with_stats(&db, &tree, 0);
        assert_eq!(stats.semijoins, 2 * (db.len() - 1));
        let before: u64 = db.states().iter().map(|r| r.tau()).sum();
        let after: u64 = reduced.states().iter().map(|r| r.tau()).sum();
        assert_eq!(stats.tuples_removed, before - after);
        assert!(stats.tuples_scanned >= before - stats.tuples_removed);
        // Already-reduced databases remove nothing.
        let (_, stats2) = full_reduce_with_stats(&reduced, &tree, 0);
        assert_eq!(stats2.tuples_removed, 0);
    }

    #[test]
    fn yannakakis_project_matches_direct_projection() {
        use mjoin_relation::AttrSet;
        let db = chain_db();
        let full_join = db.evaluate();
        // Project onto each single attribute and onto a cross-relation pair.
        let all_attrs = db.scheme().attrs_of(db.scheme().full_set());
        for a in all_attrs.iter() {
            let target = AttrSet::singleton(a);
            let got = yannakakis_project(&db, target).unwrap();
            assert_eq!(got, full_join.project(target).unwrap());
        }
        let attrs: Vec<_> = all_attrs.iter().collect();
        let pair = AttrSet::from_iter([attrs[0], *attrs.last().unwrap()]);
        let got = yannakakis_project(&db, pair).unwrap();
        assert_eq!(got, full_join.project(pair).unwrap());
    }

    #[test]
    fn yannakakis_project_rejects_foreign_attributes() {
        use mjoin_relation::{AttrSet, Attribute};
        let db = chain_db();
        let foreign = AttrSet::singleton(Attribute::from_index(200));
        assert!(yannakakis_project(&db, foreign).is_none());
    }

    #[test]
    fn yannakakis_on_star() {
        let db = Database::from_specs(&[
            ("XY", vec![vec![0, 1], vec![2, 3]]),
            ("XA", vec![vec![0, 10], vec![0, 11]]),
            ("XB", vec![vec![0, 20], vec![2, 21]]),
        ])
        .unwrap();
        let out = yannakakis(&db).unwrap();
        assert_eq!(out.result, db.evaluate());
    }
}
