//! Finer shape taxonomy for linear strategies.
//!
//! The paper treats all linear strategies alike, but real optimizers
//! distinguish *left-deep* (probe side is always the accumulated result —
//! System R's pipelined shape), *right-deep* (build side accumulated —
//! favoured by hash-join memory models), and *zig-zag* chains. Under τ
//! they cost the same (the step sets are identical); the taxonomy exists
//! for reporting and for tests that exercise tree orientation handling.

use crate::node::{Node, Strategy};

/// The orientation of a linear strategy's spine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinearShape {
    /// A single leaf (trivial strategy).
    Trivial,
    /// Every step's second child is a leaf: `((R₁ ⋈ R₂) ⋈ R₃) ⋈ R₄`.
    LeftDeep,
    /// Every step's first child is a leaf: `R₄ ⋈ (R₃ ⋈ (R₁ ⋈ R₂))`.
    RightDeep,
    /// Linear, but the spine switches sides at least once.
    ZigZag,
}

impl Strategy {
    /// The spine orientation, or `None` if the strategy is not linear.
    pub fn linear_shape(&self) -> Option<LinearShape> {
        if !self.is_linear() {
            return None;
        }
        if self.is_trivial() {
            return Some(LinearShape::Trivial);
        }
        let (mut all_left, mut all_right) = (true, true);
        let mut node = &self.root;
        while let Node::Join(l, r) = node {
            match (l.as_ref(), r.as_ref()) {
                (Node::Leaf(_), Node::Leaf(_)) => break,
                (_, Node::Leaf(_)) => {
                    all_right = false;
                    node = l;
                }
                (Node::Leaf(_), _) => {
                    all_left = false;
                    node = r;
                }
                _ => unreachable!("linear strategies have a leaf child at every step"),
            }
        }
        Some(match (all_left, all_right) {
            (true, true) => LinearShape::LeftDeep, // single step: both conventions agree
            (true, false) => LinearShape::LeftDeep,
            (false, true) => LinearShape::RightDeep,
            (false, false) => LinearShape::ZigZag,
        })
    }

    /// The right-deep mirror of a left-deep order (used by tests and the
    /// shape-invariance experiments).
    pub fn right_deep(order: &[usize]) -> Strategy {
        assert!(!order.is_empty(), "a strategy needs at least one relation");
        // Same accumulation order as `left_deep` — the step subsets (and
        // hence τ) are identical — but each new leaf joins from the left,
        // mirroring the spine.
        let mut acc = Strategy::leaf(order[0]);
        for &i in &order[1..] {
            acc = Strategy::join(Strategy::leaf(i), acc)
                .expect("right_deep requires distinct relation indices");
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classification() {
        assert_eq!(Strategy::leaf(0).linear_shape(), Some(LinearShape::Trivial));
        assert_eq!(
            Strategy::left_deep(&[0, 1]).linear_shape(),
            Some(LinearShape::LeftDeep)
        );
        assert_eq!(
            Strategy::left_deep(&[0, 1, 2, 3]).linear_shape(),
            Some(LinearShape::LeftDeep)
        );
        assert_eq!(
            Strategy::right_deep(&[0, 1, 2, 3]).linear_shape(),
            Some(LinearShape::RightDeep)
        );
        let zig = Strategy::join(
            Strategy::leaf(3),
            Strategy::join(Strategy::left_deep(&[0, 1]), Strategy::leaf(2)).unwrap(),
        )
        .unwrap();
        assert_eq!(zig.linear_shape(), Some(LinearShape::ZigZag));
        let bushy = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::left_deep(&[2, 3]),
        )
        .unwrap();
        assert_eq!(bushy.linear_shape(), None);
    }

    #[test]
    fn right_deep_mirrors_left_deep_sets() {
        let order = [2usize, 0, 3, 1];
        let ld = Strategy::left_deep(&order);
        let rd = Strategy::right_deep(&order);
        // Same step subsets (τ-equal under any oracle), mirrored structure.
        let mut ld_sets: Vec<_> = ld.steps().iter().map(|s| s.set).collect();
        let mut rd_sets: Vec<_> = rd.steps().iter().map(|s| s.set).collect();
        ld_sets.sort();
        rd_sets.sort();
        assert_eq!(ld_sets, rd_sets);
        assert!(ld.eq_unordered(&rd));
    }

    #[test]
    fn right_deep_costs_match_left_deep() {
        use mjoin_cost::{Database, ExactOracle};
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 6], vec![20, 7]]),
            ("CD", vec![vec![5, 0], vec![6, 0]]),
        ])
        .unwrap();
        let mut o = ExactOracle::new(&db);
        let order = [0usize, 1, 2];
        assert_eq!(
            Strategy::left_deep(&order).cost(&mut o),
            Strategy::right_deep(&order).cost(&mut o)
        );
    }
}
