//! Strategy classification: the predicates of Sections 2, 3 and 5.

use mjoin_cost::CardinalityOracle;
use mjoin_hypergraph::DbScheme;

use crate::node::{Node, Strategy};

impl Strategy {
    /// Is the strategy *linear* — does every step have a trivial strategy
    /// (a leaf) as a child?
    pub fn is_linear(&self) -> bool {
        fn linear(node: &Node) -> bool {
            match node {
                Node::Leaf(_) => true,
                Node::Join(l, r) => match (l.as_ref(), r.as_ref()) {
                    (Node::Leaf(_), _) => linear(r),
                    (_, Node::Leaf(_)) => linear(l),
                    _ => false,
                },
            }
        }
        linear(&self.root)
    }

    /// Is the strategy *bushy* — not linear? (A common optimizer term; the
    /// paper simply says "nonlinear".)
    pub fn is_bushy(&self) -> bool {
        !self.is_linear()
    }

    /// Does the strategy *use Cartesian products* — does some step join
    /// non-linked subsets?
    pub fn uses_cartesian(&self, scheme: &DbScheme) -> bool {
        self.steps().iter().any(|s| s.uses_cartesian(scheme))
    }

    /// Number of steps that use Cartesian products.
    ///
    /// Every strategy must use at least `comp(𝐃) − 1` of them (the
    /// components must eventually be multiplied together).
    pub fn cartesian_step_count(&self, scheme: &DbScheme) -> usize {
        self.steps()
            .iter()
            .filter(|s| s.uses_cartesian(scheme))
            .count()
    }

    /// Does the strategy evaluate the database's components *individually*
    /// — is `[E, R_E]` a node of the strategy for every component `E` of
    /// its relation set?
    ///
    /// (The paper says "step", which presumes multi-relation components;
    /// single-relation components are leaves and count as evaluated
    /// individually.)
    pub fn evaluates_components_individually(&self, scheme: &DbScheme) -> bool {
        scheme
            .components(self.set())
            .into_iter()
            .all(|comp| self.has_node_with_set(comp))
    }

    /// Does the strategy *avoid Cartesian products* — evaluate components
    /// individually and use exactly `comp(𝐃) − 1` Cartesian-product steps
    /// (the unavoidable minimum)?
    ///
    /// For a connected scheme this degenerates to "uses no Cartesian
    /// products".
    pub fn avoids_cartesian(&self, scheme: &DbScheme) -> bool {
        self.evaluates_components_individually(scheme)
            && self.cartesian_step_count(scheme) == scheme.comp(self.set()) - 1
    }

    /// Is the strategy *connected* (Lemma 6's shorthand): does it use no
    /// Cartesian products at all?
    pub fn is_connected_strategy(&self, scheme: &DbScheme) -> bool {
        !self.uses_cartesian(scheme)
    }

    /// Is the strategy *monotone decreasing* (Section 5): does every step
    /// produce no more tuples than either child?
    pub fn is_monotone_decreasing<O: CardinalityOracle>(&self, oracle: &mut O) -> bool {
        self.steps().iter().all(|s| {
            let out = oracle.tau(s.set);
            out <= oracle.tau(s.left) && out <= oracle.tau(s.right)
        })
    }

    /// Is the strategy *monotone increasing* (Section 5): does every step
    /// produce at least as many tuples as either child?
    pub fn is_monotone_increasing<O: CardinalityOracle>(&self, oracle: &mut O) -> bool {
        self.steps().iter().all(|s| {
            let out = oracle.tau(s.set);
            out >= oracle.tau(s.left) && out >= oracle.tau(s.right)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{Database, ExactOracle};
    use mjoin_hypergraph::RelSet;
    use mjoin_relation::Catalog;

    fn scheme(specs: &[&str]) -> DbScheme {
        let mut cat = Catalog::new();
        DbScheme::parse(&mut cat, specs).unwrap()
    }

    fn balanced4() -> Strategy {
        Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::left_deep(&[2, 3]),
        )
        .unwrap()
    }

    #[test]
    fn linearity() {
        assert!(Strategy::left_deep(&[0, 1, 2, 3]).is_linear());
        assert!(Strategy::leaf(0).is_linear());
        assert!(Strategy::left_deep(&[0, 1]).is_linear());
        assert!(balanced4().is_bushy());
        // Right-deep is also linear (leaf child at every step).
        let right_deep = Strategy::join(
            Strategy::leaf(0),
            Strategy::join(Strategy::leaf(1), Strategy::left_deep(&[2, 3])).unwrap(),
        )
        .unwrap();
        assert!(right_deep.is_linear());
        // Zig-zag linear too.
        let zigzag = Strategy::join(
            Strategy::leaf(3),
            Strategy::join(Strategy::left_deep(&[0, 1]), Strategy::leaf(2)).unwrap(),
        )
        .unwrap();
        assert!(zigzag.is_linear());
    }

    #[test]
    fn cartesian_usage_from_paper() {
        // "(ABC ⋈ DF) ⋈ BCD uses a Cartesian product."
        let d = scheme(&["ABC", "DF", "BCD"]);
        let s = Strategy::left_deep(&[0, 1, 2]);
        assert!(s.uses_cartesian(&d));
        assert_eq!(s.cartesian_step_count(&d), 1);
        // (ABC ⋈ BCD) ⋈ DF has no Cartesian products.
        let t = Strategy::left_deep(&[0, 2, 1]);
        assert!(!t.uses_cartesian(&d));
        assert!(t.is_connected_strategy(&d));
    }

    #[test]
    fn components_individually_from_paper() {
        // (ABC ⋈ BE) ⋈ DF evaluates components of {ABC, BE, DF}
        // individually; (ABC ⋈ DF) ⋈ BE does not.
        let d = scheme(&["ABC", "BE", "DF"]);
        let good = Strategy::left_deep(&[0, 1, 2]);
        assert!(good.evaluates_components_individually(&d));
        let bad = Strategy::left_deep(&[0, 2, 1]);
        assert!(!bad.evaluates_components_individually(&d));
    }

    #[test]
    fn avoids_cartesian_from_paper() {
        // ((ABC ⋈ BE) ⋈ (CG ⋈ GH)) ⋈ DF avoids Cartesian products;
        // ((ABC ⋈ CG) ⋈ (BE ⋈ GH)) ⋈ DF does not (though it evaluates
        // components individually).
        let d = scheme(&["ABC", "BE", "CG", "GH", "DF"]);
        let good = Strategy::join(
            Strategy::join(
                Strategy::left_deep(&[0, 1]),
                Strategy::left_deep(&[2, 3]),
            )
            .unwrap(),
            Strategy::leaf(4),
        )
        .unwrap();
        assert!(good.evaluates_components_individually(&d));
        assert_eq!(good.cartesian_step_count(&d), 1);
        assert_eq!(d.comp(d.full_set()), 2);
        assert!(good.avoids_cartesian(&d));

        let bad = Strategy::join(
            Strategy::join(
                Strategy::join(Strategy::leaf(0), Strategy::leaf(2)).unwrap(),
                Strategy::join(Strategy::leaf(1), Strategy::leaf(3)).unwrap(),
            )
            .unwrap(),
            Strategy::leaf(4),
        )
        .unwrap();
        assert!(bad.evaluates_components_individually(&d));
        assert!(!bad.avoids_cartesian(&d));
    }

    #[test]
    fn connected_scheme_avoids_iff_no_cartesian() {
        let d = scheme(&["AB", "BC", "CD"]);
        let no_cp = Strategy::left_deep(&[0, 1, 2]);
        assert!(no_cp.avoids_cartesian(&d));
        let cp = Strategy::left_deep(&[0, 2, 1]);
        assert!(!cp.avoids_cartesian(&d));
    }

    #[test]
    fn monotonicity() {
        // Keys on both sides of every join ⇒ sizes shrink: monotone
        // decreasing.
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
        ])
        .unwrap();
        let s = Strategy::left_deep(&[0, 1]);
        let mut o = ExactOracle::new(&db);
        assert!(s.is_monotone_decreasing(&mut o));
        assert!(!s.is_monotone_increasing(&mut o));

        // A fan-out join is monotone increasing.
        let db2 = Database::from_specs(&[
            ("AB", vec![vec![1, 0], vec![2, 0]]),
            ("BC", vec![vec![0, 5], vec![0, 6], vec![0, 7]]),
        ])
        .unwrap();
        let mut o2 = ExactOracle::new(&db2);
        assert!(s.is_monotone_increasing(&mut o2));
        assert!(!s.is_monotone_decreasing(&mut o2));
    }

    #[test]
    fn minimum_cartesian_steps_lower_bound() {
        // With 3 components, any strategy has ≥ 2 CP steps.
        let d = scheme(&["AB", "CD", "EF"]);
        let s = balanced_3_components();
        assert!(s.cartesian_step_count(&d) >= d.comp(RelSet::full(3)) - 1);
    }

    fn balanced_3_components() -> Strategy {
        Strategy::join(Strategy::left_deep(&[0, 1]), Strategy::leaf(2)).unwrap()
    }
}
