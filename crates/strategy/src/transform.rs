//! Pluck and graft — the tree surgeries of Figures 1 and 2.
//!
//! Every rewrite in the proofs of Theorems 1–3 (the `T₁`/`T₂` alternatives
//! of Figure 3, the component-merging moves of Figures 4–5, the transfers
//! of Figure 6) is a composition of these two operations, so the theorem
//! verifiers in `mjoin` perform the proofs' steps literally.

use mjoin_hypergraph::RelSet;

use crate::node::{Node, Strategy, StrategyError};

impl Strategy {
    /// **Pluck** (Figure 1): removes the substrategy whose root carries
    /// `target`, returning `(remainder, removed)`.
    ///
    /// In the paper: if `s = [𝐃′, R_{D′}] ⋈ [𝐃″, R_{D″}]` is a step of `S`,
    /// plucking `S_{D″}` replaces every ancestor `[𝐄, R_E]` of `s` by
    /// `[𝐄 − 𝐃″, R_{E−D″}]` and the subtree rooted at `s` by `S_{D′}`. In
    /// our structural representation the ancestor relabeling is implicit —
    /// node subsets are derived from leaves.
    ///
    /// # Errors
    /// * [`StrategyError::NoSuchNode`] if no node carries `target`;
    /// * [`StrategyError::CannotRemoveRoot`] if `target` is the whole
    ///   strategy.
    pub fn pluck(&self, target: RelSet) -> Result<(Strategy, Strategy), StrategyError> {
        let path = self.find_node(target).ok_or(StrategyError::NoSuchNode)?;
        if path.is_empty() {
            return Err(StrategyError::CannotRemoveRoot);
        }
        let removed = self.substrategy(&path)?;
        let remainder = Strategy {
            root: remove_at(&self.root, &path),
        };
        Ok((remainder, removed))
    }

    /// **Graft** (Figure 2): inserts `sub` directly above the node carrying
    /// `above` — that node's substrategy `S_{D′}` is replaced by a new step
    /// `S_{D′} ⋈ sub`, and every ancestor `[𝐄]` becomes `[𝐄 ∪ 𝐃″]`.
    ///
    /// # Errors
    /// * [`StrategyError::NoSuchNode`] if no node carries `above`;
    /// * [`StrategyError::OverlappingSubtrees`] if `sub`'s relations
    ///   intersect this strategy's.
    pub fn graft(&self, above: RelSet, sub: Strategy) -> Result<Strategy, StrategyError> {
        if !self.set().is_disjoint(sub.set()) {
            return Err(StrategyError::OverlappingSubtrees);
        }
        let path = self.find_node(above).ok_or(StrategyError::NoSuchNode)?;
        Ok(Strategy {
            root: insert_at(&self.root, &path, &sub.root),
        })
    }

    /// Exchanges the positions of the two (disjoint, non-nested) nodes
    /// carrying `a` and `b` — the move that builds `T₂` in the proof of
    /// Theorem 1 (Figure 3).
    ///
    /// # Errors
    /// [`StrategyError::NoSuchNode`] if either subset is missing or one
    /// node is an ancestor of the other (then the exchange is undefined).
    pub fn swap(&self, a: RelSet, b: RelSet) -> Result<Strategy, StrategyError> {
        let pa = self.find_node(a).ok_or(StrategyError::NoSuchNode)?;
        let pb = self.find_node(b).ok_or(StrategyError::NoSuchNode)?;
        if is_prefix(&pa, &pb) || is_prefix(&pb, &pa) {
            return Err(StrategyError::NoSuchNode);
        }
        let sub_a = self.node_at(&pa)?.clone();
        let sub_b = self.node_at(&pb)?.clone();
        let root = replace_at(&replace_at(&self.root, &pa, &sub_b), &pb, &sub_a);
        Ok(Strategy { root })
    }
}

fn is_prefix(p: &[bool], q: &[bool]) -> bool {
    p.len() <= q.len() && p.iter().zip(q).all(|(a, b)| a == b)
}

/// Removes the node at `path` (nonempty), replacing its parent with its
/// sibling.
fn remove_at(node: &Node, path: &[bool]) -> Node {
    let Node::Join(l, r) = node else {
        unreachable!("path addresses below a leaf were rejected earlier");
    };
    match path {
        [second] => {
            // The parent is `node`: replace it with the kept sibling.
            if *second {
                (**l).clone()
            } else {
                (**r).clone()
            }
        }
        [second, rest @ ..] => {
            if *second {
                Node::Join(l.clone(), Box::new(remove_at(r, rest)))
            } else {
                Node::Join(Box::new(remove_at(l, rest)), r.clone())
            }
        }
        [] => unreachable!("pluck rejects the empty path"),
    }
}

/// Replaces the node at `path` by `Join(old, sub)`.
fn insert_at(node: &Node, path: &[bool], sub: &Node) -> Node {
    match path {
        [] => Node::Join(Box::new(node.clone()), Box::new(sub.clone())),
        [second, rest @ ..] => {
            let Node::Join(l, r) = node else {
                unreachable!("path validated by find_node");
            };
            if *second {
                Node::Join(l.clone(), Box::new(insert_at(r, rest, sub)))
            } else {
                Node::Join(Box::new(insert_at(l, rest, sub)), r.clone())
            }
        }
    }
}

/// Replaces the node at `path` by `new`.
fn replace_at(node: &Node, path: &[bool], new: &Node) -> Node {
    match path {
        [] => new.clone(),
        [second, rest @ ..] => {
            let Node::Join(l, r) = node else {
                unreachable!("path validated by find_node");
            };
            if *second {
                Node::Join(l.clone(), Box::new(replace_at(r, rest, new)))
            } else {
                Node::Join(Box::new(replace_at(l, rest, new)), r.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ((0 ⋈ 1) ⋈ (2 ⋈ 3)) ⋈ 4
    fn sample() -> Strategy {
        Strategy::join(
            Strategy::join(
                Strategy::left_deep(&[0, 1]),
                Strategy::left_deep(&[2, 3]),
            )
            .unwrap(),
            Strategy::leaf(4),
        )
        .unwrap()
    }

    #[test]
    fn pluck_removes_subtree_and_relabels() {
        let s = sample();
        let (rest, removed) = s.pluck(RelSet::from_indices([2, 3])).unwrap();
        assert_eq!(removed.set(), RelSet::from_indices([2, 3]));
        assert_eq!(rest.set(), RelSet::from_indices([0, 1, 4]));
        // The remainder is (0 ⋈ 1) ⋈ 4.
        assert_eq!(rest.num_steps(), 2);
        assert!(rest.has_node_with_set(RelSet::from_indices([0, 1])));
    }

    #[test]
    fn pluck_leaf() {
        let s = sample();
        let (rest, removed) = s.pluck(RelSet::singleton(4)).unwrap();
        assert!(removed.is_trivial());
        assert_eq!(rest.set(), RelSet::full(4));
        assert_eq!(rest.num_steps(), 3);
    }

    #[test]
    fn pluck_errors() {
        let s = sample();
        assert_eq!(
            s.pluck(RelSet::from_indices([0, 2])).unwrap_err(),
            StrategyError::NoSuchNode
        );
        assert_eq!(
            s.pluck(s.set()).unwrap_err(),
            StrategyError::CannotRemoveRoot
        );
    }

    #[test]
    fn graft_inserts_above() {
        let s = Strategy::left_deep(&[0, 1]);
        let sub = Strategy::left_deep(&[2, 3]);
        // Graft above the leaf 1: (0 ⋈ (1 ⋈ (2 ⋈ 3))).
        let t = s.graft(RelSet::singleton(1), sub.clone()).unwrap();
        assert_eq!(t.set(), RelSet::full(4));
        assert!(t.has_node_with_set(RelSet::from_indices([1, 2, 3])));
        // Graft above the root: ((0 ⋈ 1) ⋈ (2 ⋈ 3)).
        let u = s.graft(RelSet::from_indices([0, 1]), sub).unwrap();
        assert!(u.has_node_with_set(RelSet::from_indices([2, 3])));
        assert_eq!(u.set(), RelSet::full(4));
    }

    #[test]
    fn graft_errors() {
        let s = Strategy::left_deep(&[0, 1]);
        assert_eq!(
            s.graft(RelSet::singleton(9), Strategy::leaf(2))
                .unwrap_err(),
            StrategyError::NoSuchNode
        );
        assert_eq!(
            s.graft(RelSet::singleton(0), Strategy::leaf(1))
                .unwrap_err(),
            StrategyError::OverlappingSubtrees
        );
    }

    #[test]
    fn pluck_then_graft_is_identity_up_to_reordering() {
        let s = sample();
        let target = RelSet::from_indices([2, 3]);
        let (rest, removed) = s.pluck(target).unwrap();
        // Graft back above the sibling that target was joined with: {0,1}.
        let back = rest.graft(RelSet::from_indices([0, 1]), removed).unwrap();
        assert!(back.eq_unordered(&s));
    }

    #[test]
    fn swap_exchanges_positions() {
        let s = sample();
        let t = s
            .swap(RelSet::singleton(4), RelSet::from_indices([2, 3]))
            .unwrap();
        // Now: ((0 ⋈ 1) ⋈ 4) ⋈ (2 ⋈ 3).
        assert!(t.has_node_with_set(RelSet::from_indices([0, 1, 4])));
        assert_eq!(t.set(), s.set());
        assert_eq!(t.num_steps(), s.num_steps());
    }

    #[test]
    fn swap_rejects_nested_nodes() {
        let s = sample();
        assert_eq!(
            s.swap(RelSet::singleton(0), RelSet::from_indices([0, 1]))
                .unwrap_err(),
            StrategyError::NoSuchNode
        );
    }

    #[test]
    fn swap_twice_is_identity() {
        let s = sample();
        let a = RelSet::singleton(4);
        let b = RelSet::from_indices([0, 1]);
        let t = s.swap(a, b).unwrap().swap(a, b).unwrap();
        assert_eq!(t, s);
    }

    #[test]
    fn plucked_strategies_remain_valid() {
        use mjoin_hypergraph::DbScheme;
        use mjoin_relation::Catalog;
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, &["AB", "BC", "CD", "DE", "EF"]).unwrap();
        let s = sample();
        assert!(s.validate(&d));
        let (rest, removed) = s.pluck(RelSet::from_indices([0, 1])).unwrap();
        assert!(rest.validate(&d));
        assert!(removed.validate(&d));
    }
}
