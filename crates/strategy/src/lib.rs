//! Join strategies: the paper's rooted binary trees over a database scheme.
//!
//! A *strategy* for a database `𝒟 = (𝐃, D)` (Section 2 of the paper) is a
//! rooted binary tree whose nodes are pairs `[𝐃′, R_{D′}]` with
//!
//! * (S1) `𝐃′ ⊆ 𝐃`,
//! * (S2) the root carrying `𝐃` itself,
//! * (S3) every internal node's children partitioning its subset, and
//! * (S4) leaves being single relations.
//!
//! Because the relation state of a node is determined by its scheme subset
//! (`R_{D′} = ⋈_{R∈D′} R`), this crate represents a strategy purely
//! structurally — a binary tree over relation indices — and obtains every
//! `τ` through a [`CardinalityOracle`](mjoin_cost::CardinalityOracle).
//!
//! Provided here:
//!
//! * [`Strategy`] construction, validation and queries (linearity,
//!   Cartesian-product usage, component evaluation, monotonicity);
//! * the paper's **pluck** and **graft** tree surgeries (Figures 1–2), from
//!   which every rewrite in the proofs of Theorems 1–3 is assembled;
//! * exhaustive enumeration of the strategy spaces optimizers search —
//!   all strategies, linear strategies, strategies avoiding Cartesian
//!   products — together with closed-form counts ((2n−3)!! and n!/2,
//!   matching the "15 orderings" of the paper's opening paragraph).
//!
//! ```
//! use mjoin_cost::{Database, ExactOracle};
//! use mjoin_strategy::Strategy;
//!
//! let db = Database::from_specs(&[
//!     ("AB", vec![vec![1, 10], vec![2, 20]]),
//!     ("BC", vec![vec![10, 5]]),
//!     ("CD", vec![vec![5, 7]]),
//! ]).unwrap();
//!
//! // ((AB ⋈ BC) ⋈ CD) — a linear strategy.
//! let s = Strategy::left_deep(&[0, 1, 2]);
//! assert!(s.is_linear());
//! assert!(!s.uses_cartesian(db.scheme()));
//!
//! let mut oracle = ExactOracle::new(&db);
//! assert_eq!(s.cost(&mut oracle), 1 + 1); // two steps, one tuple each
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod cost;
mod enumerate;
mod execute;
mod node;
mod parse;
mod shape;
mod transform;

pub use enumerate::{
    count_all_strategies, count_linear_strategies, enumerate_all, enumerate_avoiding_cartesian,
    enumerate_linear, enumerate_no_cartesian, for_each_strategy, try_best_strategy_parallel,
    try_for_each_strategy,
};
pub use execute::StepTrace;
pub use node::{Path, Step, Strategy, StrategyError};
pub use parse::ParseError;
pub use shape::LinearShape;
