//! Parsing strategies from the paper's parenthesized notation.
//!
//! The paper writes strategies as `((R₁ ⋈ R₂) ⋈ R₃) ⋈ R₄` or, with scheme
//! names standing in for relations, `(ABC ⋈ BE) ⋈ DF`. [`Strategy::parse`]
//! accepts exactly that notation, resolving each name to the relation
//! whose scheme renders to it.

use mjoin_hypergraph::DbScheme;
use mjoin_relation::Catalog;

use crate::node::{Strategy, StrategyError};

/// Parse errors for strategy expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A name did not match any relation scheme (or matched an ambiguous
    /// duplicate — refer to duplicates by index, e.g. `#2`).
    UnknownRelation(String),
    /// Structurally malformed expression (unbalanced parentheses, missing
    /// operand, trailing input, …).
    Malformed(String),
    /// The parsed tree violates the strategy invariants (a relation used
    /// twice).
    Invalid(StrategyError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
            ParseError::Malformed(m) => write!(f, "malformed strategy expression: {m}"),
            ParseError::Invalid(e) => write!(f, "invalid strategy: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: Vec<String>,
    pos: usize,
    catalog: &'a Catalog,
    scheme: &'a DbScheme,
}

impl<'a> Parser<'a> {
    fn tokenize(input: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut word = String::new();
        for c in input.chars() {
            match c {
                '(' | ')' => {
                    if !word.is_empty() {
                        tokens.push(std::mem::take(&mut word));
                    }
                    tokens.push(c.to_string());
                }
                c if c.is_whitespace() => {
                    if !word.is_empty() {
                        tokens.push(std::mem::take(&mut word));
                    }
                }
                '⋈' => {
                    if !word.is_empty() {
                        tokens.push(std::mem::take(&mut word));
                    }
                    tokens.push("⋈".to_string());
                }
                c => word.push(c),
            }
        }
        if !word.is_empty() {
            tokens.push(word);
        }
        // Also accept ASCII "join"/"*" as the operator.
        tokens
            .into_iter()
            .map(|t| {
                if t == "*" || t.eq_ignore_ascii_case("join") {
                    "⋈".to_string()
                } else {
                    t
                }
            })
            .collect()
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn bump(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        self.pos += 1;
        t
    }

    /// expr := operand (⋈ operand)*   — left-associative.
    fn expr(&mut self) -> Result<Strategy, ParseError> {
        let mut acc = self.operand()?;
        while self.peek() == Some("⋈") {
            self.bump();
            let rhs = self.operand()?;
            acc = Strategy::join(acc, rhs).map_err(ParseError::Invalid)?;
        }
        Ok(acc)
    }

    /// operand := '(' expr ')' | NAME | '#'INDEX
    fn operand(&mut self) -> Result<Strategy, ParseError> {
        match self.bump().map(str::to_owned) {
            Some(t) if t == "(" => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(")") => Ok(inner),
                    other => Err(ParseError::Malformed(format!(
                        "expected ')', found {other:?}"
                    ))),
                }
            }
            Some(t) if t == ")" || t == "⋈" => {
                Err(ParseError::Malformed("expected an operand".to_string()))
            }
            None => Err(ParseError::Malformed("expected an operand".to_string())),
            Some(name) => self.resolve(&name),
        }
    }

    fn resolve(&self, name: &str) -> Result<Strategy, ParseError> {
        if let Some(index) = name.strip_prefix('#') {
            let i: usize = index
                .parse()
                .map_err(|_| ParseError::UnknownRelation(name.to_string()))?;
            if i >= self.scheme.len() {
                return Err(ParseError::UnknownRelation(name.to_string()));
            }
            return Ok(Strategy::leaf(i));
        }
        let matches: Vec<usize> = (0..self.scheme.len())
            .filter(|&i| {
                let rendered = self.catalog.render(self.scheme.scheme(i));
                rendered == name || sorted(&rendered) == sorted(name)
            })
            .collect();
        match matches.as_slice() {
            [i] => Ok(Strategy::leaf(*i)),
            _ => Err(ParseError::UnknownRelation(name.to_string())),
        }
    }
}

fn sorted(s: &str) -> String {
    let mut cs: Vec<char> = s.chars().collect();
    cs.sort_unstable();
    cs.into_iter().collect()
}

impl Strategy {
    /// Parses the paper's parenthesized notation against a scheme, e.g.
    /// `"(ABC ⋈ BE) ⋈ DF"` (also accepting `*` or `join` for ⋈, names in
    /// any attribute order, and `#i` to pick the `i`-th relation when
    /// schemes repeat).
    ///
    /// ```
    /// use mjoin_relation::Catalog;
    /// use mjoin_hypergraph::DbScheme;
    /// use mjoin_strategy::Strategy;
    ///
    /// let mut cat = Catalog::new();
    /// let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF"]).unwrap();
    /// let s = Strategy::parse("(ABC ⋈ BE) ⋈ DF", &cat, &d).unwrap();
    /// assert!(s.is_linear());
    /// assert_eq!(s.render(&cat, &d), "((ABC ⋈ BE) ⋈ DF)");
    /// ```
    pub fn parse(
        input: &str,
        catalog: &Catalog,
        scheme: &DbScheme,
    ) -> Result<Strategy, crate::parse::ParseError> {
        let mut p = Parser {
            tokens: Parser::tokenize(input),
            pos: 0,
            catalog,
            scheme,
        };
        let s = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError::Malformed(format!(
                "trailing input at token {}",
                p.pos
            )));
        }
        if !s.validate(scheme) {
            return Err(ParseError::Invalid(StrategyError::OverlappingSubtrees));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_hypergraph::RelSet;

    fn setup() -> (Catalog, DbScheme) {
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF", "CG"]).unwrap();
        (cat, d)
    }

    #[test]
    fn parses_paper_notation() {
        let (cat, d) = setup();
        let s = Strategy::parse("((ABC ⋈ BE) ⋈ DF) ⋈ CG", &cat, &d).unwrap();
        assert!(s.is_linear());
        assert_eq!(s.set(), RelSet::full(4));
        assert_eq!(s.render(&cat, &d), "(((ABC ⋈ BE) ⋈ DF) ⋈ CG)");
    }

    #[test]
    fn parses_bushy_and_operator_variants() {
        let (cat, d) = setup();
        let s = Strategy::parse("(ABC * BE) join (DF ⋈ CG)", &cat, &d).unwrap();
        assert!(s.is_bushy());
        assert!(s.has_node_with_set(RelSet::from_indices([2, 3])));
    }

    #[test]
    fn left_associativity_without_parens() {
        let (cat, d) = setup();
        let s = Strategy::parse("ABC ⋈ BE ⋈ DF", &cat, &d).unwrap();
        assert!(s.has_node_with_set(RelSet::from_indices([0, 1])));
        assert_eq!(s.num_steps(), 2);
    }

    #[test]
    fn name_order_is_insensitive() {
        let (cat, d) = setup();
        let s = Strategy::parse("CBA ⋈ EB", &cat, &d).unwrap();
        assert_eq!(s.set(), RelSet::from_indices([0, 1]));
    }

    #[test]
    fn index_form_resolves_duplicates() {
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, &["AB", "AB"]).unwrap();
        assert_eq!(
            Strategy::parse("AB ⋈ AB", &cat, &d).unwrap_err(),
            ParseError::UnknownRelation("AB".to_string())
        );
        let s = Strategy::parse("#0 ⋈ #1", &cat, &d).unwrap();
        assert_eq!(s.set(), RelSet::full(2));
    }

    #[test]
    fn rejects_malformed_input() {
        let (cat, d) = setup();
        for bad in ["(ABC ⋈ BE", "ABC ⋈", "⋈ ABC", "ABC BE", "(ABC ⋈ BE))", ""] {
            assert!(Strategy::parse(bad, &cat, &d).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_duplicate_relations() {
        let (cat, d) = setup();
        assert!(matches!(
            Strategy::parse("ABC ⋈ ABC", &cat, &d).unwrap_err(),
            ParseError::Invalid(_)
        ));
    }

    #[test]
    fn rejects_unknown_names() {
        let (cat, d) = setup();
        assert_eq!(
            Strategy::parse("XYZ ⋈ ABC", &cat, &d).unwrap_err(),
            ParseError::UnknownRelation("XYZ".to_string())
        );
        assert!(Strategy::parse("#9 ⋈ ABC", &cat, &d).is_err());
    }

    #[test]
    fn parse_render_roundtrip() {
        let (cat, d) = setup();
        for expr in [
            "(((ABC ⋈ BE) ⋈ DF) ⋈ CG)",
            "((ABC ⋈ BE) ⋈ (DF ⋈ CG))",
            "(ABC ⋈ ((BE ⋈ DF) ⋈ CG))",
        ] {
            let s = Strategy::parse(expr, &cat, &d).unwrap();
            assert_eq!(s.render(&cat, &d), expr);
        }
    }

    #[test]
    fn error_display() {
        assert!(!ParseError::UnknownRelation("x".into()).to_string().is_empty());
        assert!(!ParseError::Malformed("m".into()).to_string().is_empty());
        assert!(!ParseError::Invalid(StrategyError::NoSuchNode)
            .to_string()
            .is_empty());
    }
}
