//! The strategy tree itself.

use std::fmt;

use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::Catalog;

/// Errors from strategy construction and surgery.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StrategyError {
    /// `join` was given two strategies whose relation sets overlap,
    /// violating (S3).
    OverlappingSubtrees,
    /// A path or subset did not identify a node of the strategy.
    NoSuchNode,
    /// Pluck was asked to remove the root (the remainder would be empty).
    CannotRemoveRoot,
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::OverlappingSubtrees => {
                write!(f, "strategy children must have disjoint relation sets")
            }
            StrategyError::NoSuchNode => write!(f, "no node with the requested address"),
            StrategyError::CannotRemoveRoot => write!(f, "cannot pluck the whole strategy"),
        }
    }
}

impl std::error::Error for StrategyError {}

/// Address of a node: the sequence of child choices from the root
/// (`false` = first child, `true` = second child). The root is the empty
/// path.
pub type Path = Vec<bool>;

/// One step of a strategy: an internal node `[𝐃₁, R_{D₁}] ⋈ [𝐃₂, R_{D₂}]`,
/// reported as scheme subsets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// The node's own subset `𝐃₁ ∪ 𝐃₂`.
    pub set: RelSet,
    /// The first child's subset `𝐃₁`.
    pub left: RelSet,
    /// The second child's subset `𝐃₂`.
    pub right: RelSet,
    /// Distance from the root (the root step has depth 0).
    pub depth: usize,
}

impl Step {
    /// Does this step use a Cartesian product — i.e. are its children's
    /// subsets *not* linked (sharing no attribute)?
    pub fn uses_cartesian(&self, scheme: &DbScheme) -> bool {
        !scheme.linked(self.left, self.right)
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Node {
    Leaf(usize),
    Join(Box<Node>, Box<Node>),
}

impl Node {
    pub(crate) fn set(&self) -> RelSet {
        match self {
            Node::Leaf(i) => RelSet::singleton(*i),
            Node::Join(l, r) => l.set().union(r.set()),
        }
    }
}

/// A strategy: a rooted binary tree whose leaves are relation indices.
///
/// The tree is *unordered* in the paper (a step `[𝐃₁] ⋈ [𝐃₂]` is the same
/// step as `[𝐃₂] ⋈ [𝐃₁]`); this type stores children in a fixed order for
/// addressing but [`Strategy::eq_unordered`] and the enumeration code treat
/// mirrored children as equal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Strategy {
    pub(crate) root: Node,
}

impl Strategy {
    /// The trivial strategy for relation `i` — a single leaf.
    pub fn leaf(i: usize) -> Strategy {
        Strategy {
            root: Node::Leaf(i),
        }
    }

    /// Joins two strategies into one whose root step is
    /// `[𝐃₁, R_{D₁}] ⋈ [𝐃₂, R_{D₂}]`.
    ///
    /// # Errors
    /// [`StrategyError::OverlappingSubtrees`] if the relation sets overlap.
    pub fn join(left: Strategy, right: Strategy) -> Result<Strategy, StrategyError> {
        if !left.set().is_disjoint(right.set()) {
            return Err(StrategyError::OverlappingSubtrees);
        }
        Ok(Strategy {
            root: Node::Join(Box::new(left.root), Box::new(right.root)),
        })
    }

    /// The left-deep linear strategy `((…(R_{o₀} ⋈ R_{o₁}) ⋈ R_{o₂}) ⋈ …)`.
    ///
    /// # Panics
    /// Panics on an empty or duplicate-containing order.
    pub fn left_deep(order: &[usize]) -> Strategy {
        assert!(!order.is_empty(), "a strategy needs at least one relation");
        let mut acc = Strategy::leaf(order[0]);
        for &i in &order[1..] {
            acc = Strategy::join(acc, Strategy::leaf(i))
                .expect("left_deep requires distinct relation indices");
        }
        acc
    }

    /// The relation subset this strategy evaluates (the root's `𝐃`).
    pub fn set(&self) -> RelSet {
        self.root.set()
    }

    /// Number of leaves, `|𝐃|`.
    pub fn num_leaves(&self) -> usize {
        self.set().len()
    }

    /// Number of steps (internal nodes) — always `|𝐃| − 1`.
    pub fn num_steps(&self) -> usize {
        self.num_leaves() - 1
    }

    /// Is this the trivial strategy (a single leaf)?
    pub fn is_trivial(&self) -> bool {
        matches!(self.root, Node::Leaf(_))
    }

    /// All steps, in pre-order (root first).
    pub fn steps(&self) -> Vec<Step> {
        let mut out = Vec::with_capacity(self.num_steps());
        collect_steps(&self.root, 0, &mut out);
        out
    }

    /// The subsets labelling every node (leaves and internal), pre-order.
    pub fn node_sets(&self) -> Vec<RelSet> {
        let mut out = Vec::new();
        collect_sets(&self.root, &mut out);
        out
    }

    /// Does some node of the strategy carry exactly `set`?
    ///
    /// Used for the paper's "`[E, R_E]` is a step in S" tests (components
    /// evaluated individually) — note leaves count for singleton sets.
    pub fn has_node_with_set(&self, set: RelSet) -> bool {
        self.find_node(set).is_some()
    }

    /// The path to the (unique, by disjointness of siblings) node carrying
    /// `set`, if any.
    pub fn find_node(&self, set: RelSet) -> Option<Path> {
        let mut path = Vec::new();
        if find_node(&self.root, set, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// The subset at `path`.
    pub fn set_at(&self, path: &[bool]) -> Result<RelSet, StrategyError> {
        Ok(self.node_at(path)?.set())
    }

    pub(crate) fn node_at(&self, path: &[bool]) -> Result<&Node, StrategyError> {
        let mut node = &self.root;
        for &second in path {
            match node {
                Node::Leaf(_) => return Err(StrategyError::NoSuchNode),
                Node::Join(l, r) => node = if second { r } else { l },
            }
        }
        Ok(node)
    }

    /// The substrategy rooted at `path`.
    pub fn substrategy(&self, path: &[bool]) -> Result<Strategy, StrategyError> {
        Ok(Strategy {
            root: self.node_at(path)?.clone(),
        })
    }

    /// Structural equality up to reordering children at every step —
    /// the paper's notion of "the same strategy".
    pub fn eq_unordered(&self, other: &Strategy) -> bool {
        eq_unordered(&self.root, &other.root)
    }

    /// A canonical form: at every join, the child containing the smaller
    /// lowest relation index comes first. Two strategies are `eq_unordered`
    /// iff their canonical forms are `==`.
    pub fn canonical(&self) -> Strategy {
        Strategy {
            root: canonical(&self.root),
        }
    }

    /// Checks the paper's invariants (S1)–(S4) against a scheme:
    /// every leaf index in range, sibling subsets disjoint (guaranteed by
    /// construction) and each leaf distinct.
    pub fn validate(&self, scheme: &DbScheme) -> bool {
        let mut seen = RelSet::empty();
        validate(&self.root, scheme.len(), &mut seen)
    }

    /// Renders the strategy as a parenthesized join expression using the
    /// scheme names, e.g. `((ABC ⋈ BE) ⋈ DF)`.
    pub fn render(&self, catalog: &Catalog, scheme: &DbScheme) -> String {
        render(&self.root, catalog, scheme)
    }

    /// Renders the strategy as a Graphviz `dot` digraph — the tree
    /// pictures of the paper's Figures 1–6, machine-drawn. Join nodes are
    /// labelled with their scheme subsets, leaves with their relation
    /// schemes; Cartesian-product steps are drawn dashed.
    pub fn to_dot(&self, catalog: &Catalog, scheme: &DbScheme) -> String {
        let mut out = String::from("digraph strategy {\n  node [shape=box];\n");
        let mut next_id = 0usize;
        fn go(
            node: &Node,
            catalog: &Catalog,
            scheme: &DbScheme,
            out: &mut String,
            next_id: &mut usize,
        ) -> usize {
            let id = *next_id;
            *next_id += 1;
            match node {
                Node::Leaf(i) => {
                    out.push_str(&format!(
                        "  n{id} [label=\"{}\"];\n",
                        catalog.render(scheme.scheme(*i))
                    ));
                }
                Node::Join(l, r) => {
                    let cartesian = !scheme.linked(l.set(), r.set());
                    let label = {
                        let parts: Vec<String> = node
                            .set()
                            .iter()
                            .map(|i| catalog.render(scheme.scheme(i)))
                            .collect();
                        parts.join(" ⋈ ")
                    };
                    out.push_str(&format!(
                        "  n{id} [label=\"{label}\"{}];\n",
                        if cartesian { ", style=dashed" } else { "" }
                    ));
                    let lid = go(l, catalog, scheme, out, next_id);
                    let rid = go(r, catalog, scheme, out, next_id);
                    out.push_str(&format!("  n{id} -> n{lid};\n  n{id} -> n{rid};\n"));
                }
            }
            id
        }
        go(&self.root, catalog, scheme, &mut out, &mut next_id);
        out.push_str("}\n");
        out
    }
}

fn collect_steps(node: &Node, depth: usize, out: &mut Vec<Step>) {
    if let Node::Join(l, r) = node {
        out.push(Step {
            set: node.set(),
            left: l.set(),
            right: r.set(),
            depth,
        });
        collect_steps(l, depth + 1, out);
        collect_steps(r, depth + 1, out);
    }
}

fn collect_sets(node: &Node, out: &mut Vec<RelSet>) {
    out.push(node.set());
    if let Node::Join(l, r) = node {
        collect_sets(l, out);
        collect_sets(r, out);
    }
}

fn find_node(node: &Node, set: RelSet, path: &mut Path) -> bool {
    let s = node.set();
    if s == set {
        return true;
    }
    if !set.is_subset_of(s) {
        return false;
    }
    if let Node::Join(l, r) = node {
        path.push(false);
        if find_node(l, set, path) {
            return true;
        }
        path.pop();
        path.push(true);
        if find_node(r, set, path) {
            return true;
        }
        path.pop();
    }
    false
}

fn eq_unordered(a: &Node, b: &Node) -> bool {
    match (a, b) {
        (Node::Leaf(i), Node::Leaf(j)) => i == j,
        (Node::Join(al, ar), Node::Join(bl, br)) => {
            (eq_unordered(al, bl) && eq_unordered(ar, br))
                || (eq_unordered(al, br) && eq_unordered(ar, bl))
        }
        _ => false,
    }
}

fn canonical(node: &Node) -> Node {
    match node {
        Node::Leaf(i) => Node::Leaf(*i),
        Node::Join(l, r) => {
            let (cl, cr) = (canonical(l), canonical(r));
            let (lf, rf) = (cl.set().first(), cr.set().first());
            if lf <= rf {
                Node::Join(Box::new(cl), Box::new(cr))
            } else {
                Node::Join(Box::new(cr), Box::new(cl))
            }
        }
    }
}

fn validate(node: &Node, n: usize, seen: &mut RelSet) -> bool {
    match node {
        Node::Leaf(i) => {
            if *i >= n || seen.contains(*i) {
                return false;
            }
            seen.insert(*i);
            true
        }
        Node::Join(l, r) => validate(l, n, seen) && validate(r, n, seen),
    }
}

fn render(node: &Node, catalog: &Catalog, scheme: &DbScheme) -> String {
    match node {
        Node::Leaf(i) => catalog.render(scheme.scheme(*i)),
        Node::Join(l, r) => format!(
            "({} ⋈ {})",
            render(l, catalog, scheme),
            render(r, catalog, scheme)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(specs: &[&str]) -> (Catalog, DbScheme) {
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, specs).unwrap();
        (cat, d)
    }

    #[test]
    fn leaf_properties() {
        let s = Strategy::leaf(2);
        assert!(s.is_trivial());
        assert_eq!(s.set(), RelSet::singleton(2));
        assert_eq!(s.num_leaves(), 1);
        assert_eq!(s.num_steps(), 0);
        assert!(s.steps().is_empty());
    }

    #[test]
    fn join_checks_disjointness() {
        let l = Strategy::left_deep(&[0, 1]);
        let bad = Strategy::leaf(1);
        assert_eq!(
            Strategy::join(l.clone(), bad).unwrap_err(),
            StrategyError::OverlappingSubtrees
        );
        let good = Strategy::leaf(2);
        let j = Strategy::join(l, good).unwrap();
        assert_eq!(j.num_steps(), 2);
    }

    #[test]
    fn left_deep_shape() {
        let s = Strategy::left_deep(&[3, 1, 0, 2]);
        assert_eq!(s.set(), RelSet::full(4));
        let steps = s.steps();
        assert_eq!(steps.len(), 3);
        // Root step joins {0,1,3} with {2}.
        assert_eq!(steps[0].set, RelSet::full(4));
        assert_eq!(steps[0].right, RelSet::singleton(2));
        assert_eq!(steps[0].depth, 0);
        assert_eq!(steps[1].depth, 1);
    }

    #[test]
    #[should_panic(expected = "distinct relation indices")]
    fn left_deep_rejects_duplicates() {
        let _ = Strategy::left_deep(&[0, 1, 0]);
    }

    #[test]
    fn step_cartesian_detection() {
        let (_, d) = scheme(&["AB", "BC", "DE"]);
        // (AB ⋈ DE): not linked → Cartesian product.
        let s = Strategy::left_deep(&[0, 2, 1]);
        let steps = s.steps();
        let inner = steps.iter().find(|st| st.set.len() == 2).unwrap();
        assert!(inner.uses_cartesian(&d));
        let root = steps.iter().find(|st| st.set.len() == 3).unwrap();
        assert!(!root.uses_cartesian(&d));
    }

    #[test]
    fn node_addressing() {
        let s = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::left_deep(&[2, 3]),
        )
        .unwrap();
        assert_eq!(s.set_at(&[]).unwrap(), RelSet::full(4));
        assert_eq!(s.set_at(&[false]).unwrap(), RelSet::from_indices([0, 1]));
        assert_eq!(s.set_at(&[true, true]).unwrap(), RelSet::singleton(3));
        assert!(s.set_at(&[false, false, true]).is_err());

        assert_eq!(
            s.find_node(RelSet::from_indices([2, 3])),
            Some(vec![true])
        );
        assert_eq!(s.find_node(RelSet::from_indices([1, 2])), None);
        assert!(s.has_node_with_set(RelSet::singleton(1)));
    }

    #[test]
    fn substrategy_extraction() {
        let s = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::leaf(2),
        )
        .unwrap();
        let sub = s.substrategy(&[false]).unwrap();
        assert_eq!(sub.set(), RelSet::from_indices([0, 1]));
        assert_eq!(sub.num_steps(), 1);
    }

    #[test]
    fn unordered_equality() {
        let a = Strategy::join(Strategy::leaf(0), Strategy::leaf(1)).unwrap();
        let b = Strategy::join(Strategy::leaf(1), Strategy::leaf(0)).unwrap();
        assert_ne!(a, b);
        assert!(a.eq_unordered(&b));
        assert_eq!(a.canonical(), b.canonical());

        let c = Strategy::join(
            Strategy::join(Strategy::leaf(2), Strategy::leaf(0)).unwrap(),
            Strategy::leaf(1),
        )
        .unwrap();
        let d = Strategy::join(
            Strategy::leaf(1),
            Strategy::join(Strategy::leaf(0), Strategy::leaf(2)).unwrap(),
        )
        .unwrap();
        assert!(c.eq_unordered(&d));
        assert_eq!(c.canonical(), d.canonical());
        assert!(!a.eq_unordered(&c));
    }

    #[test]
    fn validation() {
        let (_, d) = scheme(&["AB", "BC", "CD"]);
        assert!(Strategy::left_deep(&[0, 1, 2]).validate(&d));
        assert!(!Strategy::left_deep(&[0, 1, 2, 3]).validate(&d)); // index out of range
        assert!(Strategy::leaf(2).validate(&d));
    }

    #[test]
    fn rendering() {
        let (cat, d) = scheme(&["ABC", "BE", "DF"]);
        let s = Strategy::join(
            Strategy::join(Strategy::leaf(0), Strategy::leaf(1)).unwrap(),
            Strategy::leaf(2),
        )
        .unwrap();
        assert_eq!(s.render(&cat, &d), "((ABC ⋈ BE) ⋈ DF)");
    }

    #[test]
    fn node_sets_preorder() {
        let s = Strategy::left_deep(&[0, 1, 2]);
        let sets = s.node_sets();
        assert_eq!(sets.len(), 5); // 3 leaves + 2 internal
        assert_eq!(sets[0], RelSet::full(3));
    }

    #[test]
    fn error_display() {
        assert!(!StrategyError::OverlappingSubtrees.to_string().is_empty());
        assert!(!StrategyError::NoSuchNode.to_string().is_empty());
        assert!(!StrategyError::CannotRemoveRoot.to_string().is_empty());
    }

    #[test]
    fn dot_rendering() {
        let (cat, d) = scheme(&["ABC", "BE", "DF"]);
        // (ABC ⋈ DF) ⋈ BE: the inner step is a Cartesian product.
        let s = Strategy::left_deep(&[0, 2, 1]);
        let dot = s.to_dot(&cat, &d);
        assert!(dot.starts_with("digraph strategy {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("->").count(), 4, "{dot}");
        assert!(dot.contains("style=dashed"), "the product step is dashed");
        assert!(dot.contains("\"ABC\""));
        // Exactly one dashed node (the inner product step).
        assert_eq!(dot.matches("style=dashed").count(), 1);
    }
}
