//! Literal strategy execution: materialize every step against a database.
//!
//! The oracle machinery answers "how big would this be"; execution answers
//! "what is it". The two must agree — `τ` of each trace entry equals the
//! exact oracle's answer for that subset — which the workspace's
//! integration tests exploit as a differential check.

use mjoin_cost::Database;
use mjoin_hypergraph::RelSet;
use mjoin_relation::Relation;

use crate::node::{Node, Strategy};

/// One materialized step of an execution trace.
#[derive(Clone, Debug)]
pub struct StepTrace {
    /// The step's scheme subset `𝐃′`.
    pub set: RelSet,
    /// The materialized `R_{D′}`.
    pub relation: Relation,
}

impl Strategy {
    /// Executes the strategy bottom-up against `db`, returning the final
    /// relation. Equal to [`Database::evaluate`] restricted to the
    /// strategy's relation set, whatever the tree shape — joins commute
    /// and associate.
    ///
    /// # Panics
    /// Panics if a leaf index is out of range for `db`.
    pub fn execute(&self, db: &Database) -> Relation {
        fn go(node: &Node, db: &Database) -> Relation {
            match node {
                Node::Leaf(i) => db.state(*i).clone(),
                Node::Join(l, r) => go(l, db).natural_join(&go(r, db)),
            }
        }
        go(&self.root, db)
    }

    /// Like [`Strategy::execute`], also returning the materialized
    /// intermediate of every step in post-order (children before
    /// parents; the final result is last).
    pub fn execute_traced(&self, db: &Database) -> (Relation, Vec<StepTrace>) {
        fn go(node: &Node, db: &Database, trace: &mut Vec<StepTrace>) -> Relation {
            match node {
                Node::Leaf(i) => db.state(*i).clone(),
                Node::Join(l, r) => {
                    let left = go(l, db, trace);
                    let right = go(r, db, trace);
                    let joined = left.natural_join(&right);
                    trace.push(StepTrace {
                        set: node.set(),
                        relation: joined.clone(),
                    });
                    joined
                }
            }
        }
        let mut trace = Vec::with_capacity(self.num_steps());
        let result = go(&self.root, db, &mut trace);
        (result, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{CardinalityOracle, ExactOracle};

    fn db() -> Database {
        Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![3, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 0], vec![6, 1]]),
        ])
        .unwrap()
    }

    #[test]
    fn execution_is_shape_independent() {
        let db = db();
        let reference = db.evaluate();
        for s in crate::enumerate::enumerate_all(db.scheme().full_set()) {
            assert_eq!(s.execute(&db), reference, "{s:?}");
        }
    }

    #[test]
    fn trace_sizes_match_the_exact_oracle() {
        let db = db();
        let mut oracle = ExactOracle::new(&db);
        let s = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::leaf(2),
        )
        .unwrap();
        let (result, trace) = s.execute_traced(&db);
        assert_eq!(trace.len(), s.num_steps());
        let mut total = 0;
        for entry in &trace {
            assert_eq!(entry.relation.tau(), oracle.tau(entry.set), "{:?}", entry.set);
            total += entry.relation.tau();
        }
        assert_eq!(total, s.cost(&mut oracle), "τ is the trace total");
        assert_eq!(trace.last().unwrap().relation, result);
    }

    #[test]
    fn trace_is_post_order() {
        let db = db();
        let s = Strategy::left_deep(&[0, 1, 2]);
        let (_, trace) = s.execute_traced(&db);
        assert_eq!(trace[0].set.len(), 2);
        assert_eq!(trace[1].set.len(), 3);
    }

    #[test]
    fn execute_subset_strategies() {
        let db = db();
        let s = Strategy::left_deep(&[1, 2]);
        let got = s.execute(&db);
        assert_eq!(got, db.state(1).natural_join(db.state(2)));
    }
}
