//! Exhaustive enumeration of strategy subspaces, and their closed-form
//! counts.
//!
//! The paper opens by counting the strategies for four relations: "there
//! are 3 orderings … of the form `(R₁ ⋈ R₂) ⋈ (R₃ ⋈ R₄)` and 12 orderings
//! of the form `((R₁ ⋈ R₂) ⋈ R₃) ⋈ R₄`. Among these 15 possible orderings
//! which is optimum?" — i.e. strategies are *unordered* trees: `(2n−3)!!`
//! in total, of which `n!/2` are linear. These functions regenerate both
//! the spaces and the counts (experiment `E0-counting`).

use mjoin_cost::{SharedHandle, SyncCardinalityOracle};
use mjoin_obs::{incr, Counter};
use mjoin_guard::{Guard, MjoinError};
use mjoin_hypergraph::{DbScheme, RelSet};

use crate::node::Strategy;

/// Enumerates every strategy for `subset` (unordered trees, one
/// representative per equivalence class), invoking `f` on each.
///
/// The number of invocations is `(2k−3)!!` for `k = |subset|`; keep
/// `k ≲ 10`.
pub fn for_each_strategy<F: FnMut(&Strategy)>(subset: RelSet, f: &mut F) {
    for s in enumerate_all(subset) {
        f(&s);
    }
}

/// Lazy, interruptible strategy enumeration: visits the same `(2k−3)!!`
/// trees as [`for_each_strategy`] but *without materializing the space*,
/// checking `guard` at every recursion step so a deadline or cancellation
/// stops the walk promptly even when the space is astronomically large.
/// The visitor can also abort by returning an error.
pub fn try_for_each_strategy(
    subset: RelSet,
    guard: &Guard,
    f: &mut dyn FnMut(&Strategy) -> Result<(), MjoinError>,
) -> Result<(), MjoinError> {
    if subset.is_empty() {
        return Err(MjoinError::InvalidScheme(
            "strategies need at least one relation".into(),
        ));
    }
    each_rec(subset, guard, f)
}

fn each_rec(
    subset: RelSet,
    guard: &Guard,
    f: &mut dyn FnMut(&Strategy) -> Result<(), MjoinError>,
) -> Result<(), MjoinError> {
    guard.checkpoint()?;
    if subset.is_singleton() {
        let Some(i) = subset.first() else {
            return Err(MjoinError::Internal("singleton with no member".into()));
        };
        return f(&Strategy::leaf(i));
    }
    for (s1, s2) in subset.proper_splits() {
        each_rec(s1, guard, &mut |left: &Strategy| {
            let left = left.clone();
            each_rec(s2, guard, &mut |right: &Strategy| {
                let joined = Strategy::join(left.clone(), right.clone()).map_err(|e| {
                    MjoinError::Internal(format!("proper splits must be disjoint: {e}"))
                })?;
                f(&joined)
            })
        })?;
    }
    Ok(())
}

/// The τ-cheapest strategy for `subset` among those passing `accept`,
/// found by exhaustive enumeration fanned across `threads` scoped workers.
///
/// The top-level [`RelSet::proper_splits`] are chunked over the workers;
/// within a chunk each split's subtree is walked in exactly the order
/// [`try_for_each_strategy`] uses, and worker bests are merged in chunk
/// order under strict `<`. The winner is therefore the *first* strategy of
/// minimum cost in sequential visitation order — bit-identical to a
/// single-threaded scan at any thread count. Cardinalities come from the
/// shared oracle, whose memo all workers populate together.
///
/// Returns `Ok(None)` when `accept` rejects every strategy (an empty
/// subspace, e.g. product-free over an unconnected subset).
pub fn try_best_strategy_parallel<O: SyncCardinalityOracle>(
    oracle: &O,
    subset: RelSet,
    guard: &Guard,
    threads: usize,
    accept: &(dyn Fn(&Strategy) -> bool + Sync),
) -> Result<Option<(Strategy, u64)>, MjoinError> {
    if subset.is_empty() {
        return Err(MjoinError::InvalidScheme(
            "strategies need at least one relation".into(),
        ));
    }
    if threads <= 1 || subset.is_singleton() {
        let mut handle = SharedHandle::new(oracle);
        let mut best: Option<(Strategy, u64)> = None;
        try_for_each_strategy(subset, guard, &mut |s| {
            incr(Counter::ExhaustiveStrategies, 1);
            if !accept(s) {
                return Ok(());
            }
            let cost = s.try_cost(&mut handle)?;
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((s.clone(), cost));
            }
            Ok(())
        })?;
        return Ok(best);
    }
    let splits: Vec<(RelSet, RelSet)> = subset.proper_splits().collect();
    let workers = threads.min(splits.len().max(1));
    let chunk = splits.len().div_ceil(workers);
    let results: Vec<Result<Option<(Strategy, u64)>, MjoinError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = splits
                .chunks(chunk)
                .map(|ch| {
                    scope.spawn(move || {
                        let mut handle = SharedHandle::new(oracle);
                        let mut best: Option<(Strategy, u64)> = None;
                        for &(s1, s2) in ch {
                            each_rec(s1, guard, &mut |left: &Strategy| {
                                let left = left.clone();
                                each_rec(s2, guard, &mut |right: &Strategy| {
                                    let joined = Strategy::join(left.clone(), right.clone())
                                        .map_err(|e| {
                                            MjoinError::Internal(format!(
                                                "proper splits must be disjoint: {e}"
                                            ))
                                        })?;
                                    incr(Counter::ExhaustiveStrategies, 1);
                                    if !accept(&joined) {
                                        return Ok(());
                                    }
                                    let cost = joined.try_cost(&mut handle)?;
                                    if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                                        best = Some((joined, cost));
                                    }
                                    Ok(())
                                })
                            })?;
                        }
                        Ok(best)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("enumeration worker panicked"))
                .collect()
        });
    let mut best: Option<(Strategy, u64)> = None;
    for r in results {
        if let Some((s, c)) = r? {
            if best.as_ref().is_none_or(|(_, b)| c < *b) {
                best = Some((s, c));
            }
        }
    }
    Ok(best)
}

/// All strategies for `subset` (unordered trees, one representative per
/// class, the lower-indexed side first at every step).
pub fn enumerate_all(subset: RelSet) -> Vec<Strategy> {
    assert!(!subset.is_empty(), "strategies need at least one relation");
    if subset.is_singleton() {
        return vec![Strategy::leaf(subset.first().expect("singleton"))];
    }
    let mut out = Vec::new();
    for (s1, s2) in subset.proper_splits() {
        for left in enumerate_all(s1) {
            for right in enumerate_all(s2) {
                out.push(
                    Strategy::join(left.clone(), right)
                        .expect("proper splits are disjoint"),
                );
            }
        }
    }
    out
}

/// All *linear* strategies for `subset`: one per permutation of its
/// members with the first two in canonical (ascending) order — `k!/2`
/// strategies for `k ≥ 2`.
pub fn enumerate_linear(subset: RelSet) -> Vec<Strategy> {
    assert!(!subset.is_empty(), "strategies need at least one relation");
    let members: Vec<usize> = subset.iter().collect();
    if members.len() == 1 {
        return vec![Strategy::leaf(members[0])];
    }
    let mut out = Vec::new();
    let mut perm = members;
    let len = perm.len();
    permute(&mut perm, 0, len, &mut |p| {
        if p[0] < p[1] {
            out.push(Strategy::left_deep(p));
        }
    });
    out
}

fn permute<F: FnMut(&[usize])>(items: &mut Vec<usize>, k: usize, n: usize, f: &mut F) {
    if k == n {
        f(items);
        return;
    }
    for i in k..n {
        items.swap(k, i);
        permute(items, k + 1, n, f);
        items.swap(k, i);
    }
}

/// All strategies for `subset` that use **no** Cartesian products —
/// the *connected strategies* of Lemma 6. Empty iff `subset` is
/// unconnected (then every strategy needs at least one product).
pub fn enumerate_no_cartesian(scheme: &DbScheme, subset: RelSet) -> Vec<Strategy> {
    assert!(!subset.is_empty(), "strategies need at least one relation");
    if subset.is_singleton() {
        return vec![Strategy::leaf(subset.first().expect("singleton"))];
    }
    let mut out = Vec::new();
    for (s1, s2) in subset.proper_splits() {
        if !scheme.linked(s1, s2) {
            continue;
        }
        for left in enumerate_no_cartesian(scheme, s1) {
            for right in enumerate_no_cartesian(scheme, s2) {
                out.push(
                    Strategy::join(left.clone(), right)
                        .expect("proper splits are disjoint"),
                );
            }
        }
    }
    out
}

/// All strategies for `subset` that *avoid* Cartesian products in the
/// paper's sense: each component is evaluated individually with a
/// product-free substrategy, and the components are then multiplied
/// together (exactly `comp − 1` unavoidable product steps).
pub fn enumerate_avoiding_cartesian(scheme: &DbScheme, subset: RelSet) -> Vec<Strategy> {
    let comps = scheme.components(subset);
    // Product-free strategies per component.
    let per_comp: Vec<Vec<Strategy>> = comps
        .iter()
        .map(|&c| enumerate_no_cartesian(scheme, c))
        .collect();
    // Tree shapes over the component indices.
    let shapes = enumerate_all(RelSet::full(comps.len()));
    let mut out = Vec::new();
    for shape in shapes {
        // Substitute each component's strategies into the shape's leaves,
        // over the cartesian product of choices.
        let mut partial: Vec<Strategy> = vec![];
        substitute(&shape, &per_comp, &mut Vec::new(), &mut partial);
        out.extend(partial);
    }
    out
}

/// Expands a component-level tree `shape` into relation-level strategies by
/// choosing, for every component, one of its product-free strategies.
fn substitute(
    shape: &Strategy,
    per_comp: &[Vec<Strategy>],
    chosen: &mut Vec<Strategy>,
    out: &mut Vec<Strategy>,
) {
    let k = chosen.len();
    if k == per_comp.len() {
        out.push(instantiate(shape, chosen));
        return;
    }
    for s in &per_comp[k] {
        chosen.push(s.clone());
        substitute(shape, per_comp, chosen, out);
        chosen.pop();
    }
}

fn instantiate(shape: &Strategy, chosen: &[Strategy]) -> Strategy {
    use crate::node::Node;
    fn go(node: &Node, chosen: &[Strategy]) -> Strategy {
        match node {
            Node::Leaf(i) => chosen[*i].clone(),
            Node::Join(l, r) => {
                Strategy::join(go(l, chosen), go(r, chosen)).expect("components are disjoint")
            }
        }
    }
    go(&shape.root, chosen)
}

/// `(2n−3)!!` — the number of strategies (unordered binary trees with `n`
/// labelled leaves). `count_all_strategies(4) == 15`, matching the paper's
/// opening count.
pub fn count_all_strategies(n: usize) -> u64 {
    assert!(n >= 1);
    if n == 1 {
        return 1;
    }
    // Product of the odd numbers 1·3·…·(2n−3).
    (1..=2 * n as u64 - 3)
        .step_by(2)
        .fold(1u64, |acc, odd| acc.saturating_mul(odd))
}

/// `n!/2` — the number of linear strategies (`1` when `n = 1`).
pub fn count_linear_strategies(n: usize) -> u64 {
    assert!(n >= 1);
    if n == 1 {
        return 1;
    }
    let mut f: u64 = 1;
    for i in 2..=n as u64 {
        f = f.saturating_mul(i);
    }
    f / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn scheme(specs: &[&str]) -> DbScheme {
        let mut cat = Catalog::new();
        DbScheme::parse(&mut cat, specs).unwrap()
    }

    #[test]
    fn paper_counts_for_four_relations() {
        // "3 orderings of the form (R1 ⋈ R2) ⋈ (R3 ⋈ R4) and 12 orderings
        //  of the form ((R1 ⋈ R2) ⋈ R3) ⋈ R4 … 15 possible orderings."
        let all = enumerate_all(RelSet::full(4));
        assert_eq!(all.len(), 15);
        let linear = all.iter().filter(|s| s.is_linear()).count();
        assert_eq!(linear, 12);
        assert_eq!(all.len() - linear, 3);
    }

    #[test]
    fn closed_form_counts_match_enumeration() {
        for n in 1..=7 {
            let all = enumerate_all(RelSet::full(n));
            assert_eq!(all.len() as u64, count_all_strategies(n), "n={n}");
            let linear = enumerate_linear(RelSet::full(n));
            assert_eq!(linear.len() as u64, count_linear_strategies(n), "n={n}");
            assert_eq!(
                all.iter().filter(|s| s.is_linear()).count(),
                linear.len(),
                "n={n}"
            );
        }
    }

    #[test]
    fn enumeration_yields_distinct_canonical_strategies() {
        let all = enumerate_all(RelSet::full(5));
        let mut canon: Vec<_> = all.iter().map(|s| format!("{:?}", s.canonical())).collect();
        canon.sort();
        canon.dedup();
        assert_eq!(canon.len(), all.len());
    }

    #[test]
    fn enumeration_over_sparse_subsets() {
        let subset = RelSet::from_indices([1, 4, 7]);
        let all = enumerate_all(subset);
        assert_eq!(all.len(), 3);
        for s in &all {
            assert_eq!(s.set(), subset);
        }
    }

    #[test]
    fn linear_enumeration_is_all_linear() {
        for s in enumerate_linear(RelSet::full(5)) {
            assert!(s.is_linear());
            assert_eq!(s.set(), RelSet::full(5));
        }
    }

    #[test]
    fn no_cartesian_enumeration_chain() {
        // Chain of 4: product-free strategies are those joining contiguous
        // ranges. Count for a path query with n relations is known to be
        // the number of ways to parenthesize adjacent merges: Catalan-like.
        let d = scheme(&["AB", "BC", "CD", "DE"]);
        let free = enumerate_no_cartesian(&d, d.full_set());
        assert!(!free.is_empty());
        for s in &free {
            assert!(!s.uses_cartesian(&d));
        }
        // Cross-check against filtering the full space.
        let filtered = enumerate_all(d.full_set())
            .into_iter()
            .filter(|s| !s.uses_cartesian(&d))
            .count();
        assert_eq!(free.len(), filtered);
    }

    #[test]
    fn no_cartesian_empty_for_unconnected() {
        let d = scheme(&["AB", "CD"]);
        assert!(enumerate_no_cartesian(&d, d.full_set()).is_empty());
    }

    #[test]
    fn avoiding_cartesian_from_paper_example() {
        // Example 1: {AB, BC, DE, FG} — three strategies avoid Cartesian
        // products.
        let d = scheme(&["AB", "BC", "DE", "FG"]);
        let avoiding = enumerate_avoiding_cartesian(&d, d.full_set());
        assert_eq!(avoiding.len(), 3);
        for s in &avoiding {
            assert!(s.avoids_cartesian(&d));
        }
        // Cross-check against filtering.
        let filtered = enumerate_all(d.full_set())
            .into_iter()
            .filter(|s| s.avoids_cartesian(&d))
            .count();
        assert_eq!(avoiding.len(), filtered);
    }

    #[test]
    fn avoiding_equals_no_cartesian_for_connected() {
        let d = scheme(&["AB", "BC", "CD"]);
        let a = enumerate_avoiding_cartesian(&d, d.full_set());
        let b = enumerate_no_cartesian(&d, d.full_set());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn for_each_matches_enumerate() {
        let mut n = 0usize;
        for_each_strategy(RelSet::full(5), &mut |_| n += 1);
        assert_eq!(n as u64, count_all_strategies(5));
    }

    #[test]
    fn parallel_best_is_thread_count_invariant() {
        use mjoin_cost::SyntheticOracle;
        let d = scheme(&["AB", "BC", "CD", "DE"]);
        let o = SyntheticOracle::new(d.clone(), vec![40, 30, 20, 10], 5);
        let guard = Guard::unlimited();
        let accept = |_: &Strategy| true;
        let base = try_best_strategy_parallel(&o, d.full_set(), &guard, 1, &accept)
            .unwrap()
            .expect("full space is never empty");
        for threads in [2, 3, 4] {
            let got = try_best_strategy_parallel(&o, d.full_set(), &guard, threads, &accept)
                .unwrap()
                .expect("full space is never empty");
            assert_eq!(got.1, base.1, "{threads} threads");
            assert_eq!(got.0, base.0, "{threads} threads");
        }
    }

    #[test]
    fn parallel_best_respects_the_accept_filter() {
        use mjoin_cost::SyntheticOracle;
        let d = scheme(&["AB", "BC", "CD", "DE", "EA"]);
        let o = SyntheticOracle::new(d.clone(), vec![9, 25, 4, 16, 36], 3);
        let guard = Guard::unlimited();
        let (s, c) =
            try_best_strategy_parallel(&o, d.full_set(), &guard, 4, &|s| s.is_linear())
                .unwrap()
                .expect("linear space is never empty");
        assert!(s.is_linear());
        let mut seq = o.clone();
        let expected = enumerate_linear(d.full_set())
            .iter()
            .map(|s| s.cost(&mut seq))
            .min()
            .unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn parallel_best_reports_an_empty_subspace() {
        use mjoin_cost::SyntheticOracle;
        let d = scheme(&["AB", "CD"]);
        let o = SyntheticOracle::new(d.clone(), vec![5, 5], 2);
        let guard = Guard::unlimited();
        let best = try_best_strategy_parallel(&o, d.full_set(), &guard, 2, &|s| {
            !s.uses_cartesian(&d)
        })
        .unwrap();
        assert!(best.is_none());
    }

    #[test]
    fn count_edge_cases() {
        assert_eq!(count_all_strategies(1), 1);
        assert_eq!(count_all_strategies(2), 1);
        assert_eq!(count_all_strategies(3), 3);
        assert_eq!(count_all_strategies(5), 105);
        assert_eq!(count_all_strategies(6), 945);
        assert_eq!(count_linear_strategies(1), 1);
        assert_eq!(count_linear_strategies(2), 1);
        assert_eq!(count_linear_strategies(3), 3);
        assert_eq!(count_linear_strategies(4), 12);
    }
}
