//! Property tests for strategy trees: enumeration completeness, canonical
//! forms, classification coherence, and surgery safety.

use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::Catalog;
use mjoin_strategy::{
    count_all_strategies, count_linear_strategies, enumerate_all, enumerate_linear,
    LinearShape, Strategy as JoinStrategy,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random strategy over `n` relations, built by random pairwise joins
/// driven by proptest-chosen indices.
fn arb_strategy(max_n: usize) -> impl proptest::strategy::Strategy<Value = JoinStrategy> {
    (2usize..=max_n, proptest::collection::vec(0usize..64, 16)).prop_map(|(n, picks)| {
        let mut forest: Vec<mjoin_strategy::Strategy> =
            (0..n).map(mjoin_strategy::Strategy::leaf).collect();
        let mut k = 0usize;
        while forest.len() > 1 {
            let i = picks[k % picks.len()] % forest.len();
            let a = forest.swap_remove(i);
            let j = picks[(k + 1) % picks.len()] % forest.len();
            let b = forest.swap_remove(j);
            forest.push(mjoin_strategy::Strategy::join(a, b).expect("disjoint"));
            k += 2;
        }
        forest.pop().expect("one tree")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A strategy over n relations always has n − 1 steps, its node sets
    /// nest properly, and its canonical form is `eq_unordered` to it.
    #[test]
    fn structural_invariants(s in arb_strategy(7)) {
        prop_assert_eq!(s.num_steps(), s.num_leaves() - 1);
        for step in s.steps() {
            prop_assert!(step.left.is_disjoint(step.right));
            prop_assert_eq!(step.left.union(step.right), step.set);
        }
        let c = s.canonical();
        prop_assert!(c.eq_unordered(&s));
        prop_assert_eq!(c.set(), s.set());
        // Canonicalization is idempotent.
        prop_assert_eq!(c.canonical(), c);
    }

    /// Every strategy appears in the enumeration of its relation set, and
    /// the enumeration is duplicate-free with the closed-form size.
    #[test]
    fn enumeration_is_complete_and_exact(s in arb_strategy(6)) {
        let all = enumerate_all(s.set());
        prop_assert_eq!(all.len() as u64, count_all_strategies(s.set().len()));
        prop_assert!(all.iter().any(|t| t.eq_unordered(&s)));
        let canon: HashSet<String> = all.iter().map(|t| format!("{:?}", t.canonical())).collect();
        prop_assert_eq!(canon.len(), all.len());
    }

    /// Linear enumeration is exactly the linear slice of the full
    /// enumeration.
    #[test]
    fn linear_enumeration_is_the_linear_slice(n in 2usize..6) {
        let full = RelSet::full(n);
        let linear = enumerate_linear(full);
        prop_assert_eq!(linear.len() as u64, count_linear_strategies(n));
        let all_linear = enumerate_all(full)
            .into_iter()
            .filter(|s| s.is_linear())
            .count();
        prop_assert_eq!(linear.len(), all_linear);
    }

    /// Every linear strategy has a shape; bushy strategies have none;
    /// left-deep and right-deep constructors produce what they claim.
    #[test]
    fn shape_coherence(s in arb_strategy(7)) {
        match s.linear_shape() {
            Some(_) => prop_assert!(s.is_linear()),
            None => prop_assert!(s.is_bushy()),
        }
        let order: Vec<usize> = s.set().iter().collect();
        if order.len() >= 3 {
            prop_assert_eq!(
                JoinStrategy::left_deep(&order).linear_shape(),
                Some(LinearShape::LeftDeep)
            );
            prop_assert_eq!(
                JoinStrategy::right_deep(&order).linear_shape(),
                Some(LinearShape::RightDeep)
            );
        }
    }

    /// Pluck is safe for every non-root node set, and the two parts
    /// partition the original relations.
    #[test]
    fn pluck_safety(s in arb_strategy(7)) {
        for set in s.node_sets() {
            if set == s.set() {
                prop_assert!(s.pluck(set).is_err());
                continue;
            }
            let (rest, removed) = s.pluck(set).expect("non-root nodes pluck");
            prop_assert_eq!(removed.set(), set);
            prop_assert!(rest.set().is_disjoint(removed.set()));
            prop_assert_eq!(rest.set().union(removed.set()), s.set());
            prop_assert_eq!(rest.num_steps() + removed.num_steps() + 1, s.num_steps());
        }
    }

    /// Rendering then parsing is the identity on any strategy over a
    /// distinct-letter scheme.
    #[test]
    fn render_parse_roundtrip(s in arb_strategy(6)) {
        let mut cat = Catalog::new();
        // One distinct attribute pair per relation keeps names unique.
        let specs: Vec<String> = (0..s.set().len().max(s.set().iter().max().unwrap_or(0) + 1))
            .map(|i| format!("p{i},q{i}"))
            .collect();
        let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        let scheme = DbScheme::parse(&mut cat, &refs).expect("distinct schemes");
        let rendered = s.render(&cat, &scheme);
        let parsed = JoinStrategy::parse(&rendered, &cat, &scheme).expect("round trip");
        prop_assert_eq!(parsed, s);
    }
}
