//! Property tests for the scheme-hypergraph invariants every higher layer
//! assumes.

use mjoin_hypergraph::{DbScheme, JoinTree, RelSet};
use mjoin_relation::{AttrSet, Attribute, Catalog};
use proptest::prelude::*;

/// A random database scheme: `n` relations, each a random nonempty subset
/// of a small attribute pool (collisions guarantee interesting linkage).
fn arb_scheme() -> impl Strategy<Value = DbScheme> {
    (2usize..7, proptest::collection::vec(1u8..255, 2..7)).prop_map(|(pool, masks)| {
        let schemes: Vec<AttrSet> = masks
            .iter()
            .map(|&m| {
                let mut s = AttrSet::empty();
                for b in 0..8 {
                    if m & (1 << b) != 0 {
                        s.insert(Attribute::from_index(b % pool.max(1)));
                    }
                }
                if s.is_empty() {
                    s.insert(Attribute::from_index(0));
                }
                s
            })
            .collect();
        DbScheme::new(schemes).expect("nonempty schemes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Components partition the subset, each is connected, and no two are
    /// linked.
    #[test]
    fn components_partition(scheme in arb_scheme(), mask: u64) {
        let subset = RelSet(u128::from(mask)).intersect(scheme.full_set());
        let comps = scheme.components(subset);
        let mut union = RelSet::empty();
        for (i, &c) in comps.iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(scheme.connected(c));
            prop_assert!(union.is_disjoint(c));
            union = union.union(c);
            for &d in &comps[i + 1..] {
                prop_assert!(!scheme.linked(c, d), "components must not be linked");
            }
        }
        prop_assert_eq!(union, subset);
        prop_assert_eq!(comps.len(), scheme.comp(subset));
    }

    /// `connected` agrees with `components`: connected iff ≤ 1 component.
    #[test]
    fn connected_iff_one_component(scheme in arb_scheme(), mask: u64) {
        let subset = RelSet(u128::from(mask)).intersect(scheme.full_set());
        prop_assert_eq!(
            scheme.connected(subset),
            scheme.components(subset).len() <= 1
        );
    }

    /// The output-sensitive connected-subset enumeration matches the 2ⁿ
    /// filter on arbitrary schemes and restrictions.
    #[test]
    fn connected_subsets_match_filter(scheme in arb_scheme(), mask: u64) {
        let within = RelSet(u128::from(mask)).intersect(scheme.full_set());
        let mut fast = scheme.connected_subsets(within);
        let mut brute: Vec<RelSet> = within
            .subsets()
            .filter(|s| !s.is_empty() && scheme.connected(*s))
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// `linked` is symmetric and monotone under union.
    #[test]
    fn linked_laws(scheme in arb_scheme(), a: u64, b: u64, c: u64) {
        let full = scheme.full_set();
        let (a, b, c) = (
            RelSet(u128::from(a)).intersect(full),
            RelSet(u128::from(b)).intersect(full),
            RelSet(u128::from(c)).intersect(full),
        );
        prop_assert_eq!(scheme.linked(a, b), scheme.linked(b, a));
        if scheme.linked(a, b) && !a.is_empty() {
            prop_assert!(scheme.linked(a, b.union(c)));
        }
    }

    /// Acyclicity hierarchy is monotone: Berge ⊆ γ ⊆ β ⊆ α.
    #[test]
    fn acyclicity_hierarchy(scheme in arb_scheme()) {
        if scheme.is_berge_acyclic() {
            prop_assert!(scheme.is_gamma_acyclic());
        }
        if scheme.is_gamma_acyclic() {
            prop_assert!(scheme.is_beta_acyclic());
        }
        if scheme.is_beta_acyclic() {
            prop_assert!(scheme.is_alpha_acyclic());
        }
    }

    /// A join tree exists iff the scheme is connected and α-acyclic; when
    /// it does, every attribute's holders induce a subtree.
    #[test]
    fn join_tree_existence_and_coherence(scheme in arb_scheme()) {
        let connected = scheme.connected(scheme.full_set());
        match JoinTree::build(&scheme) {
            Some(tree) => {
                prop_assert!(connected && scheme.is_alpha_acyclic());
                prop_assert_eq!(tree.edges().len() + 1, scheme.len());
                let all = scheme.attrs_of(scheme.full_set());
                for a in all.iter() {
                    let holders = RelSet::from_indices(
                        (0..scheme.len()).filter(|&i| scheme.scheme(i).contains(a)),
                    );
                    prop_assert!(tree.induces_subtree(holders));
                }
            }
            None => prop_assert!(!connected || !scheme.is_alpha_acyclic()),
        }
    }

    /// `attrs_of` distributes over union.
    #[test]
    fn attrs_of_union(scheme in arb_scheme(), a: u64, b: u64) {
        let full = scheme.full_set();
        let (a, b) = (RelSet(u128::from(a)).intersect(full), RelSet(u128::from(b)).intersect(full));
        prop_assert_eq!(
            scheme.attrs_of(a.union(b)),
            scheme.attrs_of(a).union(scheme.attrs_of(b))
        );
    }
}

mod ccp {
    //! The csg–cmp-pair enumerator and the adjacency linkage fast path
    //! against their brute-force definitions.

    use mjoin_hypergraph::{DbScheme, RelSet};
    use mjoin_relation::{AttrSet, Attribute};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scheme_from_edges(n: usize, edges: &[(usize, usize)]) -> DbScheme {
        // One fresh attribute per edge; relation i holds the attributes of
        // its incident edges (plus a private one so no scheme is empty).
        let mut attrs = vec![AttrSet::empty(); n];
        let mut next = 0usize;
        for &(i, j) in edges {
            let a = Attribute::from_index(next);
            next += 1;
            attrs[i].insert(a);
            attrs[j].insert(a);
        }
        for s in attrs.iter_mut() {
            if s.is_empty() {
                s.insert(Attribute::from_index(next));
                next += 1;
            }
        }
        DbScheme::new(attrs).expect("valid scheme")
    }

    fn chain(n: usize) -> DbScheme {
        scheme_from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn star(n: usize) -> DbScheme {
        scheme_from_edges(n, &(1..n).map(|i| (0, i)).collect::<Vec<_>>())
    }

    fn cycle(n: usize) -> DbScheme {
        scheme_from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    fn clique(n: usize) -> DbScheme {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        scheme_from_edges(n, &edges)
    }

    /// A random connected scheme: a random spanning tree plus `extra`
    /// random edges, each edge carrying its own attribute.
    fn random_connected(rng: &mut StdRng, n: usize, extra: usize) -> DbScheme {
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for _ in 0..extra {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                edges.push((i.min(j), i.max(j)));
            }
        }
        scheme_from_edges(n, &edges)
    }

    /// The paper-definition filter the streaming enumerator must match:
    /// every proper split of every connected subset whose halves are each
    /// connected and linked to each other.
    fn brute_ccp(scheme: &DbScheme, within: RelSet) -> Vec<(RelSet, RelSet)> {
        let mut out = Vec::new();
        for t in scheme.connected_subsets(within) {
            if t.len() < 2 {
                continue;
            }
            for (s1, s2) in t.proper_splits() {
                if scheme.connected(s1) && scheme.connected(s2) && scheme.linked(s1, s2) {
                    out.push(normalize(s1, s2));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn normalize(a: RelSet, b: RelSet) -> (RelSet, RelSet) {
        // Unordered pair, side containing the lowest member first.
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn assert_ccp_matches_brute(scheme: &DbScheme, within: RelSet) {
        let emitted = scheme.ccp_pairs(within);
        let mut normalized: Vec<(RelSet, RelSet)> = emitted
            .iter()
            .map(|&(csg, cmp)| normalize(csg, cmp))
            .collect();
        normalized.sort_unstable();
        // Exactly once: no unordered pair appears twice.
        for w in normalized.windows(2) {
            assert_ne!(w[0], w[1], "csg–cmp pair emitted more than once");
        }
        assert_eq!(normalized, brute_ccp(scheme, within));
    }

    #[test]
    fn ccp_pairs_match_brute_force_on_named_topologies() {
        for n in 2..=10 {
            for scheme in [chain(n), star(n), cycle(n), clique(n)] {
                assert_ccp_matches_brute(&scheme, scheme.full_set());
            }
        }
    }

    #[test]
    fn ccp_pairs_match_brute_force_on_seeded_random_schemes() {
        let mut rng = StdRng::seed_from_u64(0x5EEDCC9);
        for trial in 0..60 {
            let n = 2 + trial % 9; // n ∈ [2, 10]
            let extra = rng.gen_range(0..=n);
            let scheme = random_connected(&mut rng, n, extra);
            assert_ccp_matches_brute(&scheme, scheme.full_set());
            // Also on a restricted (possibly disconnected) `within`.
            let within = RelSet(u128::from(rng.gen_range(1..u64::MAX))).intersect(scheme.full_set());
            assert_ccp_matches_brute(&scheme, within);
        }
    }

    #[test]
    fn ccp_pair_count_on_chain_has_closed_form() {
        // A chain's csg–cmp pairs are its (start, split, end) choices:
        // n(n−1)(n+1)/6.
        for n in 2..=12 {
            let scheme = chain(n);
            let expect = n * (n - 1) * (n + 1) / 6;
            assert_eq!(scheme.ccp_pairs(scheme.full_set()).len(), expect);
        }
    }

    #[test]
    fn linked_disjoint_agrees_with_attribute_linked_on_all_disjoint_pairs() {
        let mut rng = StdRng::seed_from_u64(0x11_4D15);
        let mut schemes = vec![chain(7), star(7), cycle(7), clique(6)];
        for trial in 0..24 {
            let n = 2 + trial % 9; // n ∈ [2, 10]
            let extra = rng.gen_range(0..=n);
            schemes.push(random_connected(&mut rng, n, extra));
        }
        for scheme in &schemes {
            let full = scheme.full_set();
            for d1 in full.subsets() {
                for d2 in full.difference(d1).subsets() {
                    assert_eq!(
                        scheme.linked_disjoint(d1, d2),
                        scheme.linked(d1, d2),
                        "linked_disjoint diverged on {d1:?} vs {d2:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn catalog_round_trip_render() {
    // Sanity outside proptest: render is stable for a known scheme.
    let mut cat = Catalog::new();
    let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF"]).unwrap();
    assert_eq!(d.render(&cat, d.full_set()), "{ABC, BE, DF}");
}
