//! Property tests for the scheme-hypergraph invariants every higher layer
//! assumes.

use mjoin_hypergraph::{DbScheme, JoinTree, RelSet};
use mjoin_relation::{AttrSet, Attribute, Catalog};
use proptest::prelude::*;

/// A random database scheme: `n` relations, each a random nonempty subset
/// of a small attribute pool (collisions guarantee interesting linkage).
fn arb_scheme() -> impl Strategy<Value = DbScheme> {
    (2usize..7, proptest::collection::vec(1u8..255, 2..7)).prop_map(|(pool, masks)| {
        let schemes: Vec<AttrSet> = masks
            .iter()
            .map(|&m| {
                let mut s = AttrSet::empty();
                for b in 0..8 {
                    if m & (1 << b) != 0 {
                        s.insert(Attribute::from_index(b % pool.max(1)));
                    }
                }
                if s.is_empty() {
                    s.insert(Attribute::from_index(0));
                }
                s
            })
            .collect();
        DbScheme::new(schemes).expect("nonempty schemes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Components partition the subset, each is connected, and no two are
    /// linked.
    #[test]
    fn components_partition(scheme in arb_scheme(), mask: u64) {
        let subset = RelSet(mask).intersect(scheme.full_set());
        let comps = scheme.components(subset);
        let mut union = RelSet::empty();
        for (i, &c) in comps.iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(scheme.connected(c));
            prop_assert!(union.is_disjoint(c));
            union = union.union(c);
            for &d in &comps[i + 1..] {
                prop_assert!(!scheme.linked(c, d), "components must not be linked");
            }
        }
        prop_assert_eq!(union, subset);
        prop_assert_eq!(comps.len(), scheme.comp(subset));
    }

    /// `connected` agrees with `components`: connected iff ≤ 1 component.
    #[test]
    fn connected_iff_one_component(scheme in arb_scheme(), mask: u64) {
        let subset = RelSet(mask).intersect(scheme.full_set());
        prop_assert_eq!(
            scheme.connected(subset),
            scheme.components(subset).len() <= 1
        );
    }

    /// The output-sensitive connected-subset enumeration matches the 2ⁿ
    /// filter on arbitrary schemes and restrictions.
    #[test]
    fn connected_subsets_match_filter(scheme in arb_scheme(), mask: u64) {
        let within = RelSet(mask).intersect(scheme.full_set());
        let mut fast = scheme.connected_subsets(within);
        let mut brute: Vec<RelSet> = within
            .subsets()
            .filter(|s| !s.is_empty() && scheme.connected(*s))
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// `linked` is symmetric and monotone under union.
    #[test]
    fn linked_laws(scheme in arb_scheme(), a: u64, b: u64, c: u64) {
        let full = scheme.full_set();
        let (a, b, c) = (
            RelSet(a).intersect(full),
            RelSet(b).intersect(full),
            RelSet(c).intersect(full),
        );
        prop_assert_eq!(scheme.linked(a, b), scheme.linked(b, a));
        if scheme.linked(a, b) && !a.is_empty() {
            prop_assert!(scheme.linked(a, b.union(c)));
        }
    }

    /// Acyclicity hierarchy is monotone: Berge ⊆ γ ⊆ β ⊆ α.
    #[test]
    fn acyclicity_hierarchy(scheme in arb_scheme()) {
        if scheme.is_berge_acyclic() {
            prop_assert!(scheme.is_gamma_acyclic());
        }
        if scheme.is_gamma_acyclic() {
            prop_assert!(scheme.is_beta_acyclic());
        }
        if scheme.is_beta_acyclic() {
            prop_assert!(scheme.is_alpha_acyclic());
        }
    }

    /// A join tree exists iff the scheme is connected and α-acyclic; when
    /// it does, every attribute's holders induce a subtree.
    #[test]
    fn join_tree_existence_and_coherence(scheme in arb_scheme()) {
        let connected = scheme.connected(scheme.full_set());
        match JoinTree::build(&scheme) {
            Some(tree) => {
                prop_assert!(connected && scheme.is_alpha_acyclic());
                prop_assert_eq!(tree.edges().len() + 1, scheme.len());
                let all = scheme.attrs_of(scheme.full_set());
                for a in all.iter() {
                    let holders = RelSet::from_indices(
                        (0..scheme.len()).filter(|&i| scheme.scheme(i).contains(a)),
                    );
                    prop_assert!(tree.induces_subtree(holders));
                }
            }
            None => prop_assert!(!connected || !scheme.is_alpha_acyclic()),
        }
    }

    /// `attrs_of` distributes over union.
    #[test]
    fn attrs_of_union(scheme in arb_scheme(), a: u64, b: u64) {
        let full = scheme.full_set();
        let (a, b) = (RelSet(a).intersect(full), RelSet(b).intersect(full));
        prop_assert_eq!(
            scheme.attrs_of(a.union(b)),
            scheme.attrs_of(a).union(scheme.attrs_of(b))
        );
    }
}

#[test]
fn catalog_round_trip_render() {
    // Sanity outside proptest: render is stable for a known scheme.
    let mut cat = Catalog::new();
    let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF"]).unwrap();
    assert_eq!(d.render(&cat, d.full_set()), "{ABC, BE, DF}");
}
