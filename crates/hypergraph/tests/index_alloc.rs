//! Allocation regression for [`SchemeIndex`] construction on the sparse
//! (n > 20) path: both lookup structures are pre-sized from one counting
//! pass, so building the n = 50 index performs exactly one allocation per
//! level table plus a constant — no rank-map rehash growth, which is what
//! this test would catch (a map that grows through ~1275 entries by
//! doubling adds about ten extra allocations and blows the bound).
//!
//! This file is its own integration-test binary so the counting global
//! allocator cannot interfere with any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mjoin_hypergraph::{DbScheme, SchemeIndex};
use mjoin_relation::{AttrSet, Catalog};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The counter only ever increments, so `count_allocs` is immune to frees
// of temporaries (`realloc` counts as one: it is one new table).
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

/// An n-relation chain scheme `R₀ = a₀a₁, R₁ = a₁a₂, …`.
fn chain(n: usize) -> DbScheme {
    let mut cat = Catalog::new();
    let attrs: Vec<AttrSet> = (0..=n)
        .map(|i| AttrSet::singleton(cat.intern(&format!("a{i}")).unwrap()))
        .collect();
    let schemes = (0..n).map(|i| attrs[i].union(attrs[i + 1])).collect();
    DbScheme::new(schemes).unwrap()
}

/// n = 50 is far past the dense cutoff (20), so the rank table is the
/// hash map. Construction must allocate each structure exactly once:
/// the counting pass (1), the pre-sized rank map (1), the level-group
/// outer vec (1), and one vec per level (n + 1) — everything beyond the
/// subset enumeration itself. The bound leaves a small constant of slack
/// for allocator-internal bookkeeping but is far below what one rehash
/// cascade would add.
#[test]
fn n50_index_construction_allocates_one_table_per_level() {
    let n = 50;
    let scheme = chain(n);
    let within = scheme.full_set();

    // Baseline: the connected-subset enumeration alone (its output vec is
    // moved into the index unchanged, so it is common to both runs).
    let (enum_allocs, subsets) = count_allocs(|| scheme.connected_subsets(within));
    assert_eq!(subsets.len(), n * (n + 1) / 2, "chain has n(n+1)/2 subsets");
    drop(subsets);

    let (total, index) = count_allocs(|| SchemeIndex::new(&scheme, within));
    assert_eq!(index.len(), n * (n + 1) / 2);
    assert!(index.rank(within).is_some(), "full set must be ranked");

    let index_allocs = total.saturating_sub(enum_allocs);
    // counting pass + rank map + outer level vec + (n + 1) level tables,
    // plus slack of 4 — a rehash cascade through ~1275 entries costs ~10.
    let bound = (n as u64 + 1) + 3 + 4;
    assert!(
        index_allocs <= bound,
        "index-only construction did {index_allocs} allocations \
         (enumeration {enum_allocs}, total {total}); bound {bound} — \
         did the rank map lose its pre-sizing?"
    );
}
