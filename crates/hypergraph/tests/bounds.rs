//! Release-mode bound hardening: oversized inputs must be rejected at the
//! scheme-construction boundary with a typed error.
//!
//! `RelSet` only `debug_assert!`s its `i < 128` bounds — in a release build
//! an out-of-range shift would wrap and silently corrupt the set. The
//! construction boundary (`DbScheme::new`/`parse`) is therefore a hard
//! check in every profile; this suite is run under `--release` by the CI
//! `store` job to prove the rejection does not compile away.

use mjoin_relation::{AttrSet, Catalog, RelationError};
use mjoin_hypergraph::{DbScheme, RelSet, MAX_RELATIONS};

fn singleton_schemes(n: usize) -> Vec<AttrSet> {
    let mut cat = Catalog::new();
    // Two relations per attribute keeps the attribute count under the
    // catalog cap while exceeding the relation cap.
    (0..n)
        .map(|i| {
            AttrSet::singleton(cat.intern(&format!("a{}", i / 2)).expect("catalog has room"))
        })
        .collect()
}

#[test]
fn one_past_the_cap_is_rejected_not_wrapped() {
    let err = DbScheme::new(singleton_schemes(MAX_RELATIONS + 1)).unwrap_err();
    assert_eq!(
        err,
        RelationError::TooManyRelations {
            max: MAX_RELATIONS,
            got: MAX_RELATIONS + 1
        }
    );
    assert!(err.to_string().contains("129"), "{err}");
}

#[test]
fn the_cap_itself_still_constructs() {
    let d = DbScheme::new(singleton_schemes(MAX_RELATIONS)).unwrap();
    assert_eq!(d.len(), MAX_RELATIONS);
    // full_set at the cap is the all-ones word, not a wrapped shift.
    assert_eq!(d.full_set(), RelSet(u128::MAX));
}

#[test]
fn far_oversized_inputs_report_their_size() {
    let err = DbScheme::new(singleton_schemes(200)).unwrap_err();
    assert_eq!(
        err,
        RelationError::TooManyRelations {
            max: MAX_RELATIONS,
            got: 200
        }
    );
}

#[test]
fn the_paper_scale_100_relation_scheme_constructs() {
    // Tay's §1 motivates ~100-join queries; those must be representable.
    let d = DbScheme::new(singleton_schemes(100)).unwrap();
    assert_eq!(d.len(), 100);
    assert_eq!(d.full_set().len(), 100);
}
