//! Database schemes and the paper's connectivity predicates.

use mjoin_relation::{AttrSet, Catalog, RelationError};

use crate::relset::{RelSet, MAX_RELATIONS};

/// A database scheme **D**: an indexed family of relation schemes.
///
/// The paper treats **D** as a set; we fix an (arbitrary) index order so
/// that subsets become [`RelSet`] bitsets. Two relation schemes may be equal
/// (the paper's Section 5 even uses a *multiset* of identical schemes for
/// unions), so this is genuinely a family, not a set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DbScheme {
    schemes: Vec<AttrSet>,
    /// `adjacency[i]` = set of `j ≠ i` with `schemes[i] ∩ schemes[j] ≠ ∅`.
    adjacency: Vec<RelSet>,
}

impl DbScheme {
    /// Builds a database scheme from relation schemes.
    ///
    /// # Errors
    /// [`RelationError::EmptyScheme`] if the family is empty or any member
    /// is the empty attribute set (the paper requires nonempty relation
    /// schemes); [`RelationError::TooManyRelations`] past [`MAX_RELATIONS`]
    /// members. The size check is a hard error (not a `debug_assert`)
    /// because it is the single boundary keeping every downstream
    /// [`RelSet`] shift in range — release builds must reject oversized
    /// inputs here rather than silently wrap bitset arithmetic.
    pub fn new(schemes: Vec<AttrSet>) -> Result<Self, RelationError> {
        if schemes.is_empty() || schemes.iter().any(|s| s.is_empty()) {
            return Err(RelationError::EmptyScheme);
        }
        if schemes.len() > MAX_RELATIONS {
            return Err(RelationError::TooManyRelations {
                max: MAX_RELATIONS,
                got: schemes.len(),
            });
        }
        let adjacency = (0..schemes.len())
            .map(|i| {
                RelSet::from_indices(
                    (0..schemes.len())
                        .filter(|&j| j != i && schemes[i].intersects(schemes[j])),
                )
            })
            .collect();
        Ok(DbScheme { schemes, adjacency })
    }

    /// Parses scheme specifications (see [`Catalog::scheme`]) into a
    /// database scheme, e.g. `DbScheme::parse(&mut cat, &["ABC", "BE", "DF"])`.
    pub fn parse(catalog: &mut Catalog, specs: &[&str]) -> Result<Self, RelationError> {
        let schemes = specs
            .iter()
            .map(|s| catalog.scheme(s))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(schemes)
    }

    /// Number of relation schemes, `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Is the family empty? (Never true for a constructed scheme.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// The `i`-th relation scheme.
    #[inline]
    pub fn scheme(&self, i: usize) -> AttrSet {
        self.schemes[i]
    }

    /// All relation schemes, in index order.
    #[inline]
    pub fn schemes(&self) -> &[AttrSet] {
        &self.schemes
    }

    /// The subset containing every relation scheme.
    #[inline]
    pub fn full_set(&self) -> RelSet {
        RelSet::full(self.len())
    }

    /// `⋃D′`: the union of the attribute sets of the members of `subset`.
    pub fn attrs_of(&self, subset: RelSet) -> AttrSet {
        subset
            .iter()
            .fold(AttrSet::empty(), |acc, i| acc.union(self.schemes[i]))
    }

    /// The paper's *linked* predicate: `D₁` is linked to `D₂` iff
    /// `(⋃D₁) ∩ (⋃D₂) ≠ φ`.
    ///
    /// Note the paper applies this to arbitrary (possibly overlapping)
    /// subsets; no disjointness is assumed here.
    pub fn linked(&self, d1: RelSet, d2: RelSet) -> bool {
        self.attrs_of(d1).intersects(self.attrs_of(d2))
    }

    /// The neighbors of relation `i`: every `j ≠ i` whose scheme shares an
    /// attribute with scheme `i`.
    #[inline]
    pub fn adjacent_to(&self, i: usize) -> RelSet {
        self.adjacency[i]
    }

    /// `𝒩(D′)`: the members *outside* `subset` adjacent to some member of
    /// it — the hypergraph neighborhood driving both the connected-subset
    /// and the csg–cmp enumerations. `O(|D′|)` word operations.
    #[inline]
    pub fn neighborhood(&self, subset: RelSet) -> RelSet {
        let mut n = RelSet::empty();
        for i in subset.iter() {
            n = n.union(self.adjacency[i]);
        }
        n.difference(subset)
    }

    /// [`linked`](Self::linked) specialized to *disjoint* subsets, as word
    /// operations on the precomputed adjacency instead of two attribute
    /// folds.
    ///
    /// Correct because for disjoint `D₁`, `D₂` an attribute
    /// `a ∈ (⋃D₁) ∩ (⋃D₂)` lies in some `schemes[i]`, `i ∈ D₁`, and some
    /// `schemes[j]`, `j ∈ D₂`; disjointness gives `i ≠ j`, so `(i, j)` is an
    /// adjacency edge — and conversely every adjacency edge witnesses a
    /// shared attribute. Cost is `O(min(|D₁|, |D₂|))` word ops; the DP hot
    /// loops call this millions of times where the attribute folds used to
    /// dominate.
    #[inline]
    pub fn linked_disjoint(&self, d1: RelSet, d2: RelSet) -> bool {
        debug_assert!(d1.is_disjoint(d2));
        let (walk, probe) = if d1.len() <= d2.len() { (d1, d2) } else { (d2, d1) };
        for i in walk.iter() {
            if !self.adjacency[i].intersect(probe).is_empty() {
                return true;
            }
        }
        false
    }

    /// Is `subset` connected (not the union of two non-linked nonempty
    /// parts)? The empty subset and singletons are connected.
    pub fn connected(&self, subset: RelSet) -> bool {
        match subset.first() {
            None => true,
            Some(start) => self.reachable_from(start, subset) == subset,
        }
    }

    /// The members of `subset` reachable from `start` through pairwise
    /// scheme intersections staying inside `subset`.
    fn reachable_from(&self, start: usize, subset: RelSet) -> RelSet {
        debug_assert!(subset.contains(start));
        let mut visited = RelSet::singleton(start);
        let mut frontier = RelSet::singleton(start);
        while !frontier.is_empty() {
            let mut next = RelSet::empty();
            for i in frontier.iter() {
                next = next.union(self.adjacency[i].intersect(subset));
            }
            frontier = next.difference(visited);
            visited = visited.union(frontier);
        }
        visited
    }

    /// The components of `subset`: maximal connected subsets not linked to
    /// the rest. Returned in ascending order of their lowest member.
    ///
    /// Note that components are defined through *pairwise scheme
    /// intersections inside the subset*, exactly as the paper's example
    /// shows: `{ABC, BE, DF, CG, GH}` is unconnected even though its parts
    /// `{ABC, BE, DF}` and `{CG, GH}` are linked — because linkage of the
    /// union flows through shared attributes of individual schemes.
    pub fn components(&self, subset: RelSet) -> Vec<RelSet> {
        let mut remaining = subset;
        let mut out = Vec::new();
        while let Some(start) = remaining.first() {
            let comp = self.reachable_from(start, remaining);
            out.push(comp);
            remaining = remaining.difference(comp);
        }
        out
    }

    /// `comp(D′)`: the number of components of `subset`.
    pub fn comp(&self, subset: RelSet) -> usize {
        self.components(subset).len()
    }

    /// All nonempty connected subsets of `within`, sorted by bit pattern.
    ///
    /// Enumeration is *output-sensitive* (the `EnumerateCsg` expansion of
    /// Moerkotte & Neumann): each connected subset is produced exactly
    /// once by growing from its lowest member through scheme adjacency, so
    /// sparse topologies stay cheap — a 40-relation chain has 820
    /// connected subsets, not 2⁴⁰ candidates.
    pub fn connected_subsets(&self, within: RelSet) -> Vec<RelSet> {
        match self.try_connected_subsets::<std::convert::Infallible>(within, &mut |_| Ok(())) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// [`connected_subsets`](Self::connected_subsets) with a fallible
    /// per-emission check. On a dense scheme the connected-subset count is
    /// exponential, so any deadline-bounded caller (the degradation
    /// ladder's DP rung in particular) must be able to abandon the
    /// enumeration mid-flight — `check` is called once per emitted subset
    /// and its first error aborts the walk.
    pub fn try_connected_subsets<E>(
        &self,
        within: RelSet,
        check: &mut impl FnMut(RelSet) -> Result<(), E>,
    ) -> Result<Vec<RelSet>, E> {
        let mut out = Vec::new();
        let members: Vec<usize> = within.iter().collect();
        for &start in members.iter().rev() {
            // Forbid all members lower than `start`: subsets rooted at
            // their own minimum are enumerated exactly once.
            let forbidden = RelSet::from_indices(members.iter().copied().filter(|&j| j < start));
            let seed = RelSet::singleton(start);
            check(seed)?;
            out.push(seed);
            self.enumerate_csg_rec(seed, forbidden.union(seed), within, &mut out, check)?;
        }
        out.sort_unstable();
        Ok(out)
    }

    fn enumerate_csg_rec<E>(
        &self,
        subset: RelSet,
        excluded: RelSet,
        within: RelSet,
        out: &mut Vec<RelSet>,
        check: &mut impl FnMut(RelSet) -> Result<(), E>,
    ) -> Result<(), E> {
        // Neighborhood of `subset` inside `within`, minus exclusions.
        let neighborhood = self
            .neighborhood(subset)
            .intersect(within)
            .difference(excluded);
        if neighborhood.is_empty() {
            return Ok(());
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            check(subset.union(ext))?;
            out.push(subset.union(ext));
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            self.enumerate_csg_rec(
                subset.union(ext),
                excluded.union(neighborhood),
                within,
                out,
                check,
            )?;
        }
        Ok(())
    }

    /// Streams every **csg–cmp pair** of the query graph restricted to
    /// `within`: each unordered pair `(D₁, D₂)` of disjoint, individually
    /// connected, mutually linked subsets is passed to `f` exactly once,
    /// oriented so `min(D₁) < min(D₂)` (hence `D₁` contains the lowest
    /// member of `D₁ ∪ D₂`).
    ///
    /// This is the `EnumerateCsg`/`EnumerateCmp` scheme of Moerkotte &
    /// Neumann's `DPccp`: csgs grow from their lowest member through the
    /// adjacency bitsets; for each csg, complements grow from each
    /// neighborhood seed with lower seeds forbidden. Work is proportional
    /// to the number of *valid joins*, so sparse topologies never touch the
    /// full subset lattice — an n-chain has exactly `n(n−1)(n+1)/6` pairs.
    ///
    /// The callback is fallible so a budget guard can cancel enumeration
    /// mid-stream; errors propagate immediately.
    pub fn try_for_each_ccp<E, F>(&self, within: RelSet, f: &mut F) -> Result<(), E>
    where
        F: FnMut(RelSet, RelSet) -> Result<(), E>,
    {
        let members: Vec<usize> = within.iter().collect();
        for (k, &start) in members.iter().enumerate().rev() {
            // As in `connected_subsets`, forbid all members lower than
            // `start`: every csg is rooted at its own minimum.
            let below = RelSet::from_indices(members[..k].iter().copied());
            let seed = RelSet::singleton(start);
            let adj = self.adjacency[start];
            self.ccp_emit_cmps(seed, adj, below, within, f)?;
            self.ccp_csg_rec(seed, adj, below.union(seed), below, within, f)?;
        }
        Ok(())
    }

    /// `⋃_{i ∈ subset} adjacency[i]` — the raw adjacency union the
    /// recursive enumerators maintain *incrementally*: extending a subset
    /// by `ext` only folds `ext`'s adjacency rows in, instead of
    /// recomputing the whole union per recursion step.
    #[inline]
    fn adj_union(&self, subset: RelSet) -> RelSet {
        let mut n = RelSet::empty();
        for i in subset.iter() {
            n = n.union(self.adjacency[i]);
        }
        n
    }

    /// `EnumerateCsgRec` specialized for pair emission: grows `subset`
    /// (whose minimum is fixed by `below`) through its neighborhood and
    /// enumerates the complements of every csg produced. `adj` is
    /// `adj_union(subset)`, carried incrementally.
    fn ccp_csg_rec<E, F>(
        &self,
        subset: RelSet,
        adj: RelSet,
        excluded: RelSet,
        below: RelSet,
        within: RelSet,
        f: &mut F,
    ) -> Result<(), E>
    where
        F: FnMut(RelSet, RelSet) -> Result<(), E>,
    {
        // `excluded ⊇ subset`, so subtracting it also strips the subset's
        // own members from the raw adjacency union.
        let neighborhood = adj.intersect(within).difference(excluded);
        if neighborhood.is_empty() {
            return Ok(());
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            self.ccp_emit_cmps(subset.union(ext), adj.union(self.adj_union(ext)), below, within, f)?;
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            self.ccp_csg_rec(
                subset.union(ext),
                adj.union(self.adj_union(ext)),
                excluded.union(neighborhood),
                below,
                within,
                f,
            )?;
        }
        Ok(())
    }

    /// `EmitCsg` + `EnumerateCmpRec`: all connected complements of csg
    /// `s1`, each grown from one neighborhood seed (descending, with lower
    /// seeds forbidden so each complement is enumerated exactly once) and
    /// with everything at or below `min(s1)` excluded. `adj1` is
    /// `adj_union(s1)`, carried incrementally by the csg recursion.
    fn ccp_emit_cmps<E, F>(
        &self,
        s1: RelSet,
        adj1: RelSet,
        below: RelSet,
        within: RelSet,
        f: &mut F,
    ) -> Result<(), E>
    where
        F: FnMut(RelSet, RelSet) -> Result<(), E>,
    {
        let excluded = below.union(s1);
        let frontier = adj1.intersect(within).difference(excluded);
        let seeds: Vec<usize> = frontier.iter().collect();
        for (k, &v) in seeds.iter().enumerate().rev() {
            let seed = RelSet::singleton(v);
            f(s1, seed)?;
            let lower = RelSet::from_indices(seeds[..k].iter().copied());
            self.ccp_cmp_rec(
                s1,
                seed,
                self.adjacency[v],
                excluded.union(lower).union(seed),
                within,
                f,
            )?;
        }
        Ok(())
    }

    /// `adj2` is `adj_union(s2)`, carried incrementally.
    fn ccp_cmp_rec<E, F>(
        &self,
        s1: RelSet,
        s2: RelSet,
        adj2: RelSet,
        excluded: RelSet,
        within: RelSet,
        f: &mut F,
    ) -> Result<(), E>
    where
        F: FnMut(RelSet, RelSet) -> Result<(), E>,
    {
        // `excluded ⊇ s2`, so subtracting it also strips `s2`'s own
        // members from the raw adjacency union.
        let neighborhood = adj2.intersect(within).difference(excluded);
        if neighborhood.is_empty() {
            return Ok(());
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            f(s1, s2.union(ext))?;
        }
        for ext in neighborhood.subsets() {
            if ext.is_empty() {
                continue;
            }
            self.ccp_cmp_rec(
                s1,
                s2.union(ext),
                adj2.union(self.adj_union(ext)),
                excluded.union(neighborhood),
                within,
                f,
            )?;
        }
        Ok(())
    }

    /// All csg–cmp pairs of `within` as a vector (see
    /// [`try_for_each_ccp`](Self::try_for_each_ccp)); the streaming form is
    /// what the DP uses, this is for tests and small-scale callers.
    pub fn ccp_pairs(&self, within: RelSet) -> Vec<(RelSet, RelSet)> {
        let mut out = Vec::new();
        self.try_for_each_ccp::<std::convert::Infallible, _>(within, &mut |a, b| {
            out.push((a, b));
            Ok(())
        })
        .unwrap();
        out
    }

    /// Renders `subset` as `{ABC, BE}` using the catalog's names.
    pub fn render(&self, catalog: &Catalog, subset: RelSet) -> String {
        let parts: Vec<String> = subset
            .iter()
            .map(|i| catalog.render(self.schemes[i]))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(specs: &[&str]) -> (Catalog, DbScheme) {
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, specs).unwrap();
        (cat, d)
    }

    #[test]
    fn construction_checks() {
        assert!(DbScheme::new(vec![]).is_err());
        assert!(DbScheme::new(vec![AttrSet::empty()]).is_err());
    }

    #[test]
    fn paper_linked_examples() {
        // {ABC, BE, DF} is linked to {CG, GH} but {AB, BE, DF} is not.
        let (mut cat, _) = parse(&["ABC"]);
        let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF", "CG", "GH", "AB"]).unwrap();
        let left = RelSet::from_indices([0, 1, 2]); // {ABC, BE, DF}
        let right = RelSet::from_indices([3, 4]); // {CG, GH}
        assert!(d.linked(left, right));
        let left2 = RelSet::from_indices([5, 1, 2]); // {AB, BE, DF}
        assert!(!d.linked(left2, right));
    }

    #[test]
    fn paper_connected_examples() {
        // {ABC, BE, DF} is unconnected; {ABC, BE, AF, DF} is connected.
        let (_, d1) = parse(&["ABC", "BE", "DF"]);
        assert!(!d1.connected(d1.full_set()));
        let (_, d2) = parse(&["ABC", "BE", "AF", "DF"]);
        assert!(d2.connected(d2.full_set()));
    }

    #[test]
    fn paper_components_example() {
        // Components of {ABC, BE, DF} are {ABC, BE} and {DF}.
        let (_, d) = parse(&["ABC", "BE", "DF"]);
        let comps = d.components(d.full_set());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], RelSet::from_indices([0, 1]));
        assert_eq!(comps[1], RelSet::singleton(2));
        assert_eq!(d.comp(d.full_set()), 2);
    }

    #[test]
    fn paper_union_remains_unconnected() {
        // {ABC, BE, DF} ∪ {CG, GH} is unconnected although the two families
        // are linked: DF is isolated.
        let (_, d) = parse(&["ABC", "BE", "DF", "CG", "GH"]);
        assert!(!d.connected(d.full_set()));
        let comps = d.components(d.full_set());
        assert_eq!(comps.len(), 2);
        // {ABC, BE, CG, GH} forms one component via C.
        assert_eq!(comps[0], RelSet::from_indices([0, 1, 3, 4]));
        assert_eq!(comps[1], RelSet::singleton(2));
    }

    #[test]
    fn empty_and_singletons_connected() {
        let (_, d) = parse(&["AB", "CD"]);
        assert!(d.connected(RelSet::empty()));
        assert!(d.connected(RelSet::singleton(0)));
        assert!(d.connected(RelSet::singleton(1)));
        assert!(!d.connected(d.full_set()));
    }

    #[test]
    fn duplicate_schemes_are_linked() {
        let (_, d) = parse(&["AB", "AB"]);
        assert!(d.connected(d.full_set()));
        assert!(d.linked(RelSet::singleton(0), RelSet::singleton(1)));
    }

    #[test]
    fn attrs_of_union() {
        let (mut cat, _) = parse(&["AB"]);
        let d = DbScheme::parse(&mut cat, &["AB", "BC"]).unwrap();
        let all = d.attrs_of(d.full_set());
        assert_eq!(all.len(), 3);
        assert_eq!(d.attrs_of(RelSet::empty()), AttrSet::empty());
    }

    #[test]
    fn connected_subsets_of_chain() {
        // Chain A-B-C-D: connected subsets of {AB, BC, CD} are all
        // contiguous index ranges: {0},{1},{2},{01},{12},{012} = 6.
        let (_, d) = parse(&["AB", "BC", "CD"]);
        let subs = d.connected_subsets(d.full_set());
        assert_eq!(subs.len(), 6);
        assert!(!subs.contains(&RelSet::from_indices([0, 2])));
    }

    #[test]
    fn connected_subsets_of_star() {
        // Star: center ABC touches AX, BY, CZ. Connected subsets: any
        // subset containing the center (8) plus the 3 leaf singletons = 11.
        let (_, d) = parse(&["ABC", "AX", "BY", "CZ"]);
        let subs = d.connected_subsets(d.full_set());
        assert_eq!(subs.len(), 11);
    }

    #[test]
    fn connected_subsets_matches_brute_force() {
        // Output-sensitive enumeration agrees with the 2ⁿ filter on a mix
        // of topologies and restricted sub-families.
        for specs in [
            vec!["AB", "BC", "CD", "DE"],
            vec!["AB", "BC", "CA", "CD"],
            vec!["AB", "CD", "EF"],
            vec!["ABC", "AX", "BY", "CZ", "XY"],
            vec!["AB", "AB", "BC"],
        ] {
            let (_, d) = parse(&specs);
            for within in [d.full_set(), RelSet::from_indices([0, 2, 3])] {
                let within = within.intersect(d.full_set());
                let mut fast = d.connected_subsets(within);
                let mut brute: Vec<RelSet> = within
                    .subsets()
                    .filter(|s| !s.is_empty() && d.connected(*s))
                    .collect();
                fast.sort_unstable();
                brute.sort_unstable();
                assert_eq!(fast, brute, "{specs:?} within {within:?}");
            }
        }
    }

    #[test]
    fn connected_subsets_enumeration_has_no_duplicates() {
        let (_, d) = parse(&["ABC", "AX", "BY", "CZ", "XY"]);
        let subs = d.connected_subsets(d.full_set());
        let mut dedup = subs.clone();
        dedup.dedup();
        assert_eq!(subs.len(), dedup.len());
    }

    #[test]
    fn connected_subsets_chain_is_quadratic() {
        // A 40-relation chain has exactly 40·41/2 = 820 connected subsets;
        // the enumeration must produce them without touching 2⁴⁰ masks.
        let specs: Vec<String> = (0..40)
            .map(|i| format!("x{i},x{}", i + 1))
            .collect();
        let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        let mut cat = Catalog::new();
        let d = DbScheme::parse(&mut cat, &refs).unwrap();
        assert_eq!(d.connected_subsets(d.full_set()).len(), 820);
    }

    #[test]
    fn render() {
        let (cat, d) = parse(&["ABC", "BE"]);
        assert_eq!(d.render(&cat, d.full_set()), "{ABC, BE}");
        assert_eq!(d.render(&cat, RelSet::singleton(1)), "{BE}");
    }
}
