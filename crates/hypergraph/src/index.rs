//! A precomputed index over the connected subsets of a scheme.
//!
//! The bottom-up DPs spend their lives asking three questions about one
//! fixed `(scheme, within)` pair: *which subsets are connected*, *in what
//! order should they be solved*, and *where does this subset's memo entry
//! live*. [`SchemeIndex`] answers all three once, up front:
//!
//! * the connected subsets of `within`, enumerated output-sensitively and
//!   held in ascending bit-pattern order;
//! * a **rank** per connected subset — a dense index into flat `Vec` memo
//!   tables, replacing per-probe hashing on the DP hot path;
//! * the subsets grouped by size (**levels**), each level holding ranks in
//!   ascending bit-pattern order — exactly the deterministic processing
//!   order the sequential DP uses and the parallel DP freezes per level.
//!
//! The index owns its data (no borrow of the scheme), so a sequential DP
//! can build it from `oracle.scheme()` and then use the oracle mutably.

use mjoin_guard::MjoinError;

use crate::hash::FastMap;
use crate::relset::RelSet;
use crate::scheme::DbScheme;

/// When `within` is a low-contiguous mask of at most this many relations,
/// the rank lookup uses a direct-indexed table (`2^n` entries of `u32`, so
/// 4 MiB at the cap) instead of a hash map. The csg–cmp enumeration does
/// three rank probes per emitted pair, so this is the difference between
/// three array loads and three hash probes on the DP's hottest path.
const DENSE_MAX_RELS: usize = 20;

/// Dense ranks and size levels over the connected subsets of `within`.
pub struct SchemeIndex {
    within: RelSet,
    /// Connected subsets in ascending bit-pattern order; position = rank.
    subsets: Vec<RelSet>,
    /// Hash fallback for `rank`, only built when `dense` is not.
    ranks: FastMap<RelSet, u32>,
    /// Direct-indexed ranks (`dense[s.bits] = rank + 1`, `0` = not a
    /// connected subset) when `within = {0, …, n−1}` with
    /// `n ≤ DENSE_MAX_RELS` — the common whole-query case.
    dense: Option<Vec<u32>>,
    /// `by_size[k]` = ranks of the size-`k` connected subsets, ascending
    /// by bit pattern (ranks are bit-ordered, so pushes in rank order keep
    /// each level sorted).
    by_size: Vec<Vec<u32>>,
}

impl SchemeIndex {
    /// Builds the index for the connected subsets of `within`.
    ///
    /// # Panics
    /// Panics when the connected-subset count exceeds the u32 rank space;
    /// long-running services should prefer [`SchemeIndex::try_new`], which
    /// reports that case as a typed error instead of burning the calling
    /// worker through `catch_unwind`.
    pub fn new(scheme: &DbScheme, within: RelSet) -> SchemeIndex {
        Self::try_new(scheme, within).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SchemeIndex::new`], with rank-space overflow reported as
    /// [`MjoinError::InvalidScheme`] rather than a panic.
    pub fn try_new(scheme: &DbScheme, within: RelSet) -> Result<SchemeIndex, MjoinError> {
        Self::try_new_checked(scheme, within, &mut |_| Ok(()))
    }

    /// [`SchemeIndex::try_new`] with a fallible per-subset check run during
    /// the connected-subset enumeration. On a dense scheme that enumeration
    /// is exponential, so deadline-bounded callers (the degradation
    /// ladder's DP rungs) thread their guard checkpoint through here — a
    /// hostile 60-clique then trips its budget instead of hanging the
    /// worker in index construction.
    pub fn try_new_checked(
        scheme: &DbScheme,
        within: RelSet,
        check: &mut impl FnMut(RelSet) -> Result<(), MjoinError>,
    ) -> Result<SchemeIndex, MjoinError> {
        let subsets = scheme.try_connected_subsets(within, check)?;
        Self::ensure_rank_space(subsets.len())?;
        let n = within.len();
        let use_dense = n > 0 && n <= DENSE_MAX_RELS && within == RelSet::full(n);
        // Pre-size both lookup structures from one counting pass so
        // construction allocates each table exactly once — above n = 20 the
        // sparse map would otherwise rehash repeatedly as it grows through
        // tens of thousands of connected subsets.
        let mut level_counts = vec![0usize; n + 1];
        for s in &subsets {
            level_counts[s.len()] += 1;
        }
        let mut ranks = if use_dense {
            FastMap::default()
        } else {
            FastMap::with_capacity_and_hasher(subsets.len(), Default::default())
        };
        let mut dense = use_dense.then(|| vec![0u32; 1usize << n]);
        let mut by_size: Vec<Vec<u32>> = level_counts
            .iter()
            .map(|&c| Vec::with_capacity(c))
            .collect();
        for (rank, &s) in subsets.iter().enumerate() {
            match &mut dense {
                Some(table) => {
                    let slot = usize::try_from(s.0).expect("dense subsets fit 20 bits");
                    table[slot] = rank as u32 + 1;
                }
                None => {
                    ranks.insert(s, rank as u32);
                }
            }
            by_size[s.len()].push(rank as u32);
        }
        Ok(SchemeIndex {
            within,
            subsets,
            ranks,
            dense,
            by_size,
        })
    }

    /// The rank-space bound [`try_new`](Self::try_new) enforces, split out
    /// so the overflow arm is unit-testable (no real scheme can produce
    /// 2³² connected subsets in test time).
    fn ensure_rank_space(count: usize) -> Result<(), MjoinError> {
        if u32::try_from(count).is_err() {
            return Err(MjoinError::InvalidScheme(format!(
                "connected-subset count {count} exceeds the u32 rank space"
            )));
        }
        Ok(())
    }

    /// The subset this index covers.
    #[inline]
    pub fn within(&self) -> RelSet {
        self.within
    }

    /// Number of connected subsets (= size of a flat memo table).
    #[inline]
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// Is the index empty (only for `within = φ`)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// The connected subsets in rank (ascending bit-pattern) order.
    #[inline]
    pub fn subsets(&self) -> &[RelSet] {
        &self.subsets
    }

    /// The dense rank of `subset`, `None` if it is not a connected subset
    /// of `within`.
    #[inline]
    pub fn rank(&self, subset: RelSet) -> Option<u32> {
        if let Some(table) = &self.dense {
            // Bits outside `within` index past the table and fall off the
            // `get`, which is the correct `None`; bits past the usize range
            // (members ≥ 64) must take the same path, never a truncating
            // `as` cast that could alias onto a valid slot.
            return match usize::try_from(subset.0).ok().and_then(|i| table.get(i)) {
                Some(&r) if r != 0 => Some(r - 1),
                _ => None,
            };
        }
        self.ranks.get(&subset).copied()
    }

    /// The subset at `rank` (inverse of [`rank`](Self::rank)).
    #[inline]
    pub fn subset(&self, rank: u32) -> RelSet {
        self.subsets[rank as usize]
    }

    /// Largest subset size (`|within|`).
    #[inline]
    pub fn max_size(&self) -> usize {
        self.within.len()
    }

    /// Ranks of the size-`size` connected subsets, ascending by bit
    /// pattern — one DP level.
    #[inline]
    pub fn level(&self, size: usize) -> &[u32] {
        self.by_size
            .get(size)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn scheme(specs: &[&str]) -> DbScheme {
        let mut cat = Catalog::new();
        DbScheme::parse(&mut cat, specs).unwrap()
    }

    #[test]
    fn ranks_are_dense_bit_ordered_and_invertible() {
        let d = scheme(&["AB", "BC", "CD", "DE"]);
        let idx = SchemeIndex::new(&d, d.full_set());
        // 4-chain: 4·5/2 = 10 connected subsets.
        assert_eq!(idx.len(), 10);
        for (rank, &s) in idx.subsets().iter().enumerate() {
            assert_eq!(idx.rank(s), Some(rank as u32));
            assert_eq!(idx.subset(rank as u32), s);
        }
        // Ascending bit order.
        for pair in idx.subsets().windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // Disconnected subsets have no rank.
        assert_eq!(idx.rank(RelSet::from_indices([0, 2])), None);
    }

    #[test]
    fn levels_partition_the_ranks_by_size() {
        let d = scheme(&["ABC", "AX", "BY", "CZ"]);
        let idx = SchemeIndex::new(&d, d.full_set());
        assert_eq!(idx.max_size(), 4);
        let mut total = 0;
        for size in 1..=idx.max_size() {
            for &r in idx.level(size) {
                assert_eq!(idx.subset(r).len(), size);
                total += 1;
            }
            // Levels are ascending by bit pattern.
            for pair in idx.level(size).windows(2) {
                assert!(idx.subset(pair[0]) < idx.subset(pair[1]));
            }
        }
        assert_eq!(total, idx.len());
        assert_eq!(idx.level(0), &[] as &[u32]);
        assert_eq!(idx.level(99), &[] as &[u32]);
    }

    #[test]
    fn dense_and_hash_rank_paths_agree() {
        let d = scheme(&["AB", "BC", "CD"]);
        // full_set is a low-contiguous mask → direct-indexed ranks;
        // {1, 2} is not → hash fallback. Both must answer identically.
        for within in [d.full_set(), RelSet::from_indices([1, 2])] {
            let idx = SchemeIndex::new(&d, within);
            for (rank, &s) in idx.subsets().iter().enumerate() {
                assert_eq!(idx.rank(s), Some(rank as u32));
            }
            assert_eq!(idx.rank(RelSet::from_indices([0, 2])), None);
            // Out-of-range bits must not index past the dense table —
            // including bits ≥ 64, where a truncating cast would alias
            // back onto valid slots.
            assert_eq!(idx.rank(RelSet::singleton(63)), None);
            assert_eq!(idx.rank(RelSet::singleton(64)), None);
            assert_eq!(idx.rank(RelSet::singleton(127)), None);
            assert_eq!(idx.rank(RelSet::from_indices([0, 64])), None);
        }
    }

    #[test]
    fn try_new_succeeds_where_new_does_and_overflow_is_typed() {
        let d = scheme(&["AB", "BC", "CD"]);
        let idx = SchemeIndex::try_new(&d, d.full_set()).unwrap();
        assert_eq!(idx.len(), SchemeIndex::new(&d, d.full_set()).len());
        // The overflow arm itself: no constructible scheme reaches 2³²
        // connected subsets, so the extracted bound is tested directly.
        assert!(SchemeIndex::ensure_rank_space(u32::MAX as usize).is_ok());
        let err = SchemeIndex::ensure_rank_space(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, MjoinError::InvalidScheme(_)), "{err}");
        assert!(err.to_string().contains("rank space"), "{err}");
    }

    #[test]
    fn restricted_index_only_sees_members_of_within() {
        let d = scheme(&["AB", "BC", "CD"]);
        let within = RelSet::from_indices([0, 1]);
        let idx = SchemeIndex::new(&d, within);
        assert_eq!(idx.within(), within);
        assert_eq!(idx.len(), 3); // {0}, {1}, {0,1}
        assert_eq!(idx.rank(RelSet::singleton(2)), None);
    }
}
