//! Subsets of a database scheme as 128-bit bitsets.

use std::fmt;

/// Maximum number of relation schemes in a [`DbScheme`](crate::DbScheme).
///
/// A [`RelSet`] is a `u128`; the dynamic programs in `mjoin-optimizer`
/// index their memo tables by it. 128 relations covers the ~100-join
/// queries the paper's §1 cites as motivation — far beyond exhaustive or
/// full-DP reach (those stop near n = 7 and n = 20 respectively); larger
/// queries go through the polynomial rungs (linearized DP, partitioned
/// DPccp, greedy), which all fit in 128.
pub const MAX_RELATIONS: usize = 128;

/// A subset of the relation schemes of a database scheme — the paper's
/// `D′ ⊆ D` — as a bitset over scheme indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RelSet(pub u128);

impl RelSet {
    /// The empty subset.
    #[inline]
    pub const fn empty() -> Self {
        RelSet(0)
    }

    /// The full set over the first `n` relations.
    #[inline]
    pub fn full(n: usize) -> Self {
        debug_assert!(n <= MAX_RELATIONS);
        if n == MAX_RELATIONS {
            RelSet(u128::MAX)
        } else {
            RelSet((1u128 << n) - 1)
        }
    }

    /// The singleton `{i}`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        debug_assert!(i < MAX_RELATIONS);
        RelSet(1u128 << i)
    }

    /// Builds a set from indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = RelSet::empty();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Inserts index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < MAX_RELATIONS);
        self.0 |= 1u128 << i;
    }

    /// Removes index `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < MAX_RELATIONS);
        self.0 &= !(1u128 << i);
    }

    /// Does the set contain `i`?
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        debug_assert!(i < MAX_RELATIONS);
        self.0 & (1u128 << i) != 0
    }

    /// Cardinality `|D′|`.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is this the empty subset?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Is this a singleton (a trivial strategy's scheme set)?
    #[inline]
    pub fn is_singleton(self) -> bool {
        self.0 != 0 && self.0 & (self.0 - 1) == 0
    }

    /// Union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        RelSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        RelSet(self.0 & other.0)
    }

    /// Difference `self − other`.
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        RelSet(self.0 & !other.0)
    }

    /// Are the two subsets disjoint (`D₁ ∩ D₂ = φ`)?
    #[inline]
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// The lowest index in the set, if any.
    #[inline]
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over member indices in ascending order.
    #[inline]
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }

    /// The set's bits as two 64-bit words, low word first — the word-level
    /// view the partition/interval inner loops and the persistent store
    /// (whose flat format is 64-bit) work in.
    #[inline]
    pub fn words(self) -> [u64; 2] {
        [self.0 as u64, (self.0 >> 64) as u64]
    }

    /// Rebuilds a set from [`RelSet::words`] output.
    #[inline]
    pub fn from_words(words: [u64; 2]) -> Self {
        RelSet((words[0] as u128) | ((words[1] as u128) << 64))
    }

    /// The low 64-bit word when the whole set fits in it — the persistent
    /// store's flat subset representation. `None` for any member ≥ 64.
    #[inline]
    pub fn to_u64(self) -> Option<u64> {
        u64::try_from(self.0).ok()
    }

    /// Iterates over all subsets of `self` (including empty and `self`),
    /// in ascending bit-pattern order.
    ///
    /// This is the classic sub-mask enumeration used by the DP optimizers:
    /// enumerating all submasks of all masks costs `O(3ⁿ)` total.
    #[inline]
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            current: 0,
            done: false,
        }
    }

    /// Iterates over the *proper, nonempty* subsets of `self` that contain
    /// the lowest member — i.e. a canonical representative of each unordered
    /// partition of `self` into two nonempty blocks `(S, self − S)`.
    ///
    /// Strategies are unordered trees (a step `[D₁] ⋈ [D₂]` equals
    /// `[D₂] ⋈ [D₁]`), so the DPs only need each split once.
    pub fn proper_splits(self) -> impl Iterator<Item = (RelSet, RelSet)> {
        let lowest = self.first().map(RelSet::singleton).unwrap_or_default();
        let full = self;
        self.subsets().filter_map(move |s| {
            if s.is_empty() || s == full || !lowest.is_subset_of(s) {
                None
            } else {
                Some((s, full.difference(s)))
            }
        })
    }
}

impl std::ops::BitOr for RelSet {
    type Output = RelSet;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for RelSet {
    type Output = RelSet;
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for RelSet {
    type Output = RelSet;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Ascending iterator over the members of a [`RelSet`].
pub struct RelSetIter(u128);

impl Iterator for RelSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelSetIter {}

/// Iterator over all subsets of a mask (sub-mask enumeration).
pub struct SubsetIter {
    mask: u128,
    current: u128,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let out = RelSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Next submask in ascending order.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut s = RelSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        assert_eq!(s.len(), 2);
        assert!(s.contains(5));
        assert!(!s.contains(1));
        assert!(!s.is_singleton());
        s.remove(0);
        assert!(s.is_singleton());
        assert_eq!(s.first(), Some(5));
    }

    #[test]
    fn full_and_singleton() {
        assert_eq!(RelSet::full(3), RelSet(0b111));
        assert_eq!(RelSet::full(64).len(), 64);
        assert_eq!(RelSet::full(128).len(), 128);
        assert_eq!(RelSet::singleton(2), RelSet(0b100));
        assert!(RelSet::singleton(0).is_singleton());
        assert!(RelSet::singleton(127).is_singleton());
    }

    #[test]
    fn algebra() {
        let s = RelSet::from_indices([0, 1, 2]);
        let t = RelSet::from_indices([2, 3]);
        assert_eq!(s | t, RelSet::from_indices([0, 1, 2, 3]));
        assert_eq!(s & t, RelSet::singleton(2));
        assert_eq!(s - t, RelSet::from_indices([0, 1]));
        assert!(!s.is_disjoint(t));
        assert!(RelSet::from_indices([0]).is_disjoint(RelSet::from_indices([1])));
        assert!(t.is_subset_of(RelSet::full(4)));
        assert!(!s.is_subset_of(t));
    }

    #[test]
    fn iteration_ascending() {
        let s = RelSet::from_indices([7, 1, 63, 100]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 7, 63, 100]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn words_round_trip_across_the_64_bit_seam() {
        let s = RelSet::from_indices([0, 63, 64, 127]);
        let w = s.words();
        assert_eq!(w, [1 | (1 << 63), 1 | (1 << 63)]);
        assert_eq!(RelSet::from_words(w), s);
        assert_eq!(s.to_u64(), None);
        let low = RelSet::from_indices([0, 63]);
        assert_eq!(low.to_u64(), Some(1 | (1 << 63)));
    }

    #[test]
    fn subset_enumeration_counts() {
        let s = RelSet::full(4);
        assert_eq!(s.subsets().count(), 16);
        let t = RelSet::from_indices([1, 3]);
        let subs: Vec<RelSet> = t.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&RelSet::empty()));
        assert!(subs.contains(&t));
        assert!(subs.contains(&RelSet::singleton(1)));
        assert!(subs.contains(&RelSet::singleton(3)));
    }

    #[test]
    fn subset_enumeration_above_the_64_bit_seam() {
        let t = RelSet::from_indices([63, 64, 100]);
        let subs: Vec<RelSet> = t.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&RelSet::empty()));
        assert!(subs.contains(&t));
        assert!(subs.contains(&RelSet::from_indices([63, 100])));
    }

    #[test]
    fn empty_set_has_one_subset() {
        assert_eq!(RelSet::empty().subsets().count(), 1);
    }

    #[test]
    fn proper_splits_enumerates_each_partition_once() {
        let s = RelSet::full(4);
        let splits: Vec<(RelSet, RelSet)> = s.proper_splits().collect();
        // 2^(4-1) - 1 = 7 unordered partitions into two nonempty blocks.
        assert_eq!(splits.len(), 7);
        for (a, b) in &splits {
            assert!(a.is_disjoint(*b));
            assert_eq!(a.union(*b), s);
            assert!(!a.is_empty() && !b.is_empty());
            // Canonical side contains relation 0.
            assert!(a.contains(0));
        }
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for (a, _) in splits {
            assert!(seen.insert(a));
        }
    }

    #[test]
    fn proper_splits_of_singleton_is_empty() {
        assert_eq!(RelSet::singleton(3).proper_splits().count(), 0);
        assert_eq!(RelSet::empty().proper_splits().count(), 0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", RelSet::from_indices([0, 2])), "{0,2}");
    }
}
