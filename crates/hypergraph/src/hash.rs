//! A zero-dependency splitmix64 hasher for bitset keys.
//!
//! The DP memo tables and oracle memos are keyed by [`RelSet`] — a single
//! `u64` — yet `std`'s default `HashMap` pays full SipHash per probe. The
//! splitmix64 finalizer is a bijective 64-bit mix with full avalanche,
//! which is exactly the right amount of hashing for a one-word key: one
//! multiply-xor-shift chain instead of a keyed cryptographic permutation.
//! Unlike `RandomState`, the hash is also *deterministic across runs*,
//! which keeps memo behaviour (resize points, probe order) reproducible.
//!
//! [`RelSet`]: crate::RelSet

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The splitmix64 finalizer (Steele, Lea & Flood's `SplittableRandom`
/// mixer): bijective on `u64`, full avalanche, three multiply/xor rounds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Hasher`] that runs every written word through [`splitmix64`].
///
/// Designed for one-word keys (`RelSet`, small indices); multi-word input
/// chains the mix, so it stays a valid (if not optimal) general hasher.
#[derive(Default, Clone)]
pub struct SplitMix64Hasher(u64);

impl Hasher for SplitMix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: fold 8-byte chunks through the mix.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64(self.0 ^ u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(self.0 ^ x);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `HashMap` over the deterministic splitmix64 hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<SplitMix64Hasher>>;

/// `HashSet` over the deterministic splitmix64 hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<SplitMix64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelSet;

    #[test]
    fn splitmix64_is_a_bijection_sample() {
        // Distinct inputs, distinct outputs (spot check a small range).
        let mut seen: Vec<u64> = (0..4096).map(splitmix64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4096);
    }

    #[test]
    fn fast_map_round_trips_relsets() {
        let mut m: FastMap<RelSet, u64> = FastMap::default();
        for i in 0..64 {
            m.insert(RelSet::singleton(i), i as u64);
        }
        for i in 0..64 {
            assert_eq!(m.get(&RelSet::singleton(i)), Some(&(i as u64)));
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<SplitMix64Hasher> = Default::default();
        let h1 = b.hash_one(RelSet(0xDEAD_BEEF));
        let h2 = b.hash_one(RelSet(0xDEAD_BEEF));
        assert_eq!(h1, h2);
        assert_ne!(b.hash_one(RelSet(1)), b.hash_one(RelSet(2)));
    }
}
