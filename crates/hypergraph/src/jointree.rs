//! Join trees (qual trees) for α-acyclic database schemes.
//!
//! A *join tree* for a database scheme **D** is a tree whose nodes are the
//! relation schemes of **D** such that, for every attribute `A`, the nodes
//! whose schemes contain `A` induce a subtree (the *coherence* or
//! *connectedness* property). A scheme has a join tree iff it is α-acyclic
//! [Beeri–Fagin–Maier–Yannakakis 1983].
//!
//! Construction uses Maier's maximum-weight-spanning-tree theorem: any
//! maximal spanning tree of the intersection graph (edge weight
//! `|Rᵢ ∩ Rⱼ|`) is a join tree iff the scheme is α-acyclic. We build one by
//! Prim's algorithm and verify coherence, which doubles as an independent
//! α-acyclicity test cross-checked against GYO in the tests.

use crate::relset::RelSet;
use crate::scheme::DbScheme;

/// A join tree over a connected, α-acyclic database scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinTree {
    n: usize,
    /// Tree edges as (child, parent) pairs in construction order.
    edges: Vec<(usize, usize)>,
    /// `neighbors[i]` = tree-adjacent relation indices.
    neighbors: Vec<RelSet>,
}

impl JoinTree {
    /// Builds a join tree for `scheme`, or `None` if the scheme is
    /// disconnected or not α-acyclic.
    pub fn build(scheme: &DbScheme) -> Option<JoinTree> {
        let full = scheme.full_set();
        if !scheme.connected(full) {
            return None;
        }
        let n = scheme.len();
        if n == 1 {
            return Some(JoinTree {
                n,
                edges: Vec::new(),
                neighbors: vec![RelSet::empty()],
            });
        }
        // Prim: grow a maximum-weight spanning tree from relation 0.
        let mut in_tree = RelSet::singleton(0);
        let mut edges = Vec::with_capacity(n - 1);
        let mut neighbors = vec![RelSet::empty(); n];
        while in_tree.len() < n {
            let mut best: Option<(usize, usize, usize)> = None; // (weight, child, parent)
            for p in in_tree.iter() {
                for c in full.difference(in_tree).iter() {
                    let w = scheme.scheme(p).intersect(scheme.scheme(c)).len();
                    if best.is_none_or(|(bw, _, _)| w > bw) {
                        best = Some((w, c, p));
                    }
                }
            }
            let (w, c, p) = best.expect("connected scheme always yields an edge");
            if w == 0 {
                // Cannot happen for connected schemes, but guard anyway.
                return None;
            }
            edges.push((c, p));
            neighbors[c].insert(p);
            neighbors[p].insert(c);
            in_tree.insert(c);
        }
        let tree = JoinTree { n, edges, neighbors };
        if tree.is_coherent(scheme) {
            Some(tree)
        } else {
            None
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the tree trivial (a single node)?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The tree edges as (child, parent) pairs, in the order Prim added
    /// them (children appear after their parents were connected).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Tree neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> RelSet {
        self.neighbors[i]
    }

    /// Builds a join tree from an explicit edge list, validating that the
    /// edges form a spanning tree and satisfy coherence. Returns `None`
    /// otherwise.
    pub fn from_edges(scheme: &DbScheme, edges: &[(usize, usize)]) -> Option<JoinTree> {
        let n = scheme.len();
        if edges.len() + 1 != n {
            return None;
        }
        let mut neighbors = vec![RelSet::empty(); n];
        for &(a, b) in edges {
            if a >= n || b >= n || a == b || neighbors[a].contains(b) {
                return None;
            }
            neighbors[a].insert(b);
            neighbors[b].insert(a);
        }
        // Spanning: BFS from 0 reaches everything; orient edges by BFS.
        let mut visited = RelSet::singleton(0);
        let mut oriented = Vec::with_capacity(edges.len());
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(p) = queue.pop_front() {
            for c in neighbors[p].difference(visited).iter() {
                visited.insert(c);
                oriented.push((c, p));
                queue.push_back(c);
            }
        }
        if visited != RelSet::full(n) {
            return None;
        }
        let tree = JoinTree {
            n,
            edges: oriented,
            neighbors,
        };
        tree.is_coherent(scheme).then_some(tree)
    }

    /// Enumerates **every** join tree of `scheme` — all coherent spanning
    /// trees of its link graph. Exponential; intended for the small
    /// schemes of Section-5 experiments (`n ≲ 7`).
    pub fn all_join_trees(scheme: &DbScheme) -> Vec<JoinTree> {
        let n = scheme.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return JoinTree::build(scheme).into_iter().collect();
        }
        // Candidate edges: linked pairs.
        let candidates: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|&(i, j)| scheme.scheme(i).intersects(scheme.scheme(j)))
            .collect();
        let mut out = Vec::new();
        let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
        // Union-find over relations for cycle pruning.
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn rec(
            scheme: &DbScheme,
            candidates: &[(usize, usize)],
            index: usize,
            chosen: &mut Vec<(usize, usize)>,
            parent: Vec<usize>,
            out: &mut Vec<JoinTree>,
        ) {
            let n = scheme.len();
            if chosen.len() == n - 1 {
                if let Some(tree) = JoinTree::from_edges(scheme, chosen) {
                    out.push(tree);
                }
                return;
            }
            if index >= candidates.len()
                || candidates.len() - index < (n - 1) - chosen.len()
            {
                return; // not enough edges left
            }
            // Include candidates[index] if it doesn't close a cycle.
            let (a, b) = candidates[index];
            let mut p = parent.clone();
            let (ra, rb) = (find(&mut p, a), find(&mut p, b));
            if ra != rb {
                p[ra] = rb;
                chosen.push((a, b));
                rec(scheme, candidates, index + 1, chosen, p, out);
                chosen.pop();
            }
            // Exclude it.
            rec(scheme, candidates, index + 1, chosen, parent, out);
        }
        rec(
            scheme,
            &candidates,
            0,
            &mut chosen,
            (0..n).collect(),
            &mut out,
        );
        out
    }

    /// Section 5's re-defined *connected* for α-acyclic schemes: is there
    /// **some** join tree of `scheme` in which `subset` induces a subtree?
    ///
    /// (The fixed-tree variant is [`JoinTree::induces_subtree`]; this
    /// quantifies over all join trees, as the paper's definition does.)
    pub fn connected_in_some_join_tree(scheme: &DbScheme, subset: RelSet) -> bool {
        JoinTree::all_join_trees(scheme)
            .iter()
            .any(|t| t.induces_subtree(subset))
    }

    /// Coherence: for every attribute, the nodes containing it induce a
    /// subtree.
    fn is_coherent(&self, scheme: &DbScheme) -> bool {
        let all_attrs = scheme.attrs_of(scheme.full_set());
        all_attrs.iter().all(|a| {
            let holders = RelSet::from_indices(
                (0..self.n).filter(|&i| scheme.scheme(i).contains(a)),
            );
            self.induces_subtree(holders)
        })
    }

    /// Does `subset` induce a (connected) subtree of this join tree?
    ///
    /// This is Section 5's re-definition of *connected* for α-acyclic
    /// schemes: `E ⊆ D` is connected iff it induces a subtree of a join
    /// tree for `D`.
    pub fn induces_subtree(&self, subset: RelSet) -> bool {
        let Some(start) = subset.first() else {
            return true;
        };
        let mut visited = RelSet::singleton(start);
        let mut frontier = RelSet::singleton(start);
        while !frontier.is_empty() {
            let mut next = RelSet::empty();
            for i in frontier.iter() {
                next = next.union(self.neighbors[i].intersect(subset));
            }
            frontier = next.difference(visited);
            visited = visited.union(frontier);
        }
        visited == subset
    }

    /// A leaves-to-root semijoin schedule rooted at `root`: pairs
    /// (child, parent) such that processing them in order reduces every
    /// parent after all its descendants — the upward pass of the
    /// Bernstein–Chiu full reducer and of Yannakakis' algorithm.
    pub fn reduction_order(&self, root: usize) -> Vec<(usize, usize)> {
        assert!(root < self.n, "root out of range");
        // BFS from root, then reverse the discovery edges.
        let mut order = Vec::with_capacity(self.n.saturating_sub(1));
        let mut visited = RelSet::singleton(root);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(p) = queue.pop_front() {
            for c in self.neighbors[p].difference(visited).iter() {
                visited.insert(c);
                order.push((c, p));
                queue.push_back(c);
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn parse(specs: &[&str]) -> DbScheme {
        let mut cat = Catalog::new();
        DbScheme::parse(&mut cat, specs).unwrap()
    }

    #[test]
    fn chain_join_tree() {
        let d = parse(&["AB", "BC", "CD"]);
        let t = JoinTree::build(&d).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.edges().len(), 2);
        // The chain's only join tree is the path 0-1-2.
        assert_eq!(t.neighbors(0), RelSet::singleton(1));
        assert_eq!(t.neighbors(1), RelSet::from_indices([0, 2]));
        assert_eq!(t.neighbors(2), RelSet::singleton(1));
    }

    #[test]
    fn triangle_has_no_join_tree() {
        let d = parse(&["AB", "BC", "CA"]);
        assert!(JoinTree::build(&d).is_none());
    }

    #[test]
    fn disconnected_has_no_join_tree() {
        let d = parse(&["AB", "CD"]);
        assert!(JoinTree::build(&d).is_none());
    }

    #[test]
    fn single_relation_tree() {
        let d = parse(&["ABC"]);
        let t = JoinTree::build(&d).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.edges().is_empty());
        assert!(t.induces_subtree(RelSet::singleton(0)));
        assert!(t.reduction_order(0).is_empty());
    }

    #[test]
    fn join_tree_exists_iff_alpha_acyclic() {
        for specs in [
            vec!["AB", "BC", "CD"],
            vec!["AB", "BC", "CA"],
            vec!["ABC", "AB", "BC", "CA"],
            vec!["AX", "BX", "CX"],
            vec!["ABC", "BCD", "CDE"],
            vec!["AB", "BC", "ABC"],
        ] {
            let d = parse(&specs);
            let connected = d.connected(d.full_set());
            let has_tree = JoinTree::build(&d).is_some();
            if connected {
                assert_eq!(has_tree, d.is_alpha_acyclic(), "{specs:?}");
            } else {
                assert!(!has_tree, "{specs:?}");
            }
        }
    }

    #[test]
    fn induced_subtrees_of_chain() {
        let d = parse(&["AB", "BC", "CD"]);
        let t = JoinTree::build(&d).unwrap();
        assert!(t.induces_subtree(RelSet::from_indices([0, 1])));
        assert!(t.induces_subtree(RelSet::from_indices([1, 2])));
        assert!(!t.induces_subtree(RelSet::from_indices([0, 2])));
        assert!(t.induces_subtree(RelSet::full(3)));
        assert!(t.induces_subtree(RelSet::empty()));
    }

    #[test]
    fn reduction_order_visits_children_before_parents() {
        let d = parse(&["AX", "BX", "CX", "XY"]);
        let t = JoinTree::build(&d).unwrap();
        let order = t.reduction_order(3);
        assert_eq!(order.len(), 3);
        // Every pair's parent must be closer to the root; with root 3 and a
        // star through X, each (child, parent) either ends at 3 or at an
        // inner node processed later.
        let mut processed = RelSet::empty();
        for (c, _p) in &order {
            assert!(!processed.contains(*c), "child reduced twice");
            processed.insert(*c);
        }
        assert!(!processed.contains(3), "root is never a child");
    }

    #[test]
    fn all_join_trees_of_a_chain_is_unique() {
        let d = parse(&["AB", "BC", "CD"]);
        let trees = JoinTree::all_join_trees(&d);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].induces_subtree(RelSet::from_indices([0, 1])));
    }

    #[test]
    fn all_join_trees_of_a_hub_scheme_has_many() {
        // {ABC, A, B, C}-style: leaves AX/BY/CZ hang off hub ABC; exactly
        // one join tree (each leaf only links to the hub). Now a scheme
        // with a tie: {AB, AB, AB} — any spanning tree of the triangle of
        // identical schemes is coherent: 3 join trees.
        let d = parse(&["AB", "AB", "AB"]);
        let trees = JoinTree::all_join_trees(&d);
        assert_eq!(trees.len(), 3);
    }

    #[test]
    fn all_join_trees_empty_for_cyclic() {
        let d = parse(&["AB", "BC", "CA"]);
        assert!(JoinTree::all_join_trees(&d).is_empty());
    }

    #[test]
    fn from_edges_validates() {
        let d = parse(&["AB", "BC", "CD"]);
        assert!(JoinTree::from_edges(&d, &[(0, 1), (1, 2)]).is_some());
        // Non-spanning, cyclic, or incoherent edge sets are rejected.
        assert!(JoinTree::from_edges(&d, &[(0, 1)]).is_none());
        assert!(JoinTree::from_edges(&d, &[(0, 1), (0, 1)]).is_none());
        assert!(JoinTree::from_edges(&d, &[(0, 2), (1, 2)]).is_none()); // AB-CD edge breaks B's subtree
    }

    #[test]
    fn section5_connectivity_quantifies_over_trees() {
        // {AB, AB, AB}: the pair {0, 2} is NOT adjacent in the path tree
        // 0-1-2 but IS connected in the tree 1-0-2; the quantified
        // predicate must accept it.
        let d = parse(&["AB", "AB", "AB"]);
        let pair = RelSet::from_indices([0, 2]);
        let path_tree = JoinTree::from_edges(&d, &[(0, 1), (1, 2)]).unwrap();
        assert!(!path_tree.induces_subtree(pair));
        assert!(JoinTree::connected_in_some_join_tree(&d, pair));
        // On a chain, {first, last} is connected in no join tree.
        let chain = parse(&["AB", "BC", "CD"]);
        assert!(!JoinTree::connected_in_some_join_tree(
            &chain,
            RelSet::from_indices([0, 2])
        ));
        assert!(JoinTree::connected_in_some_join_tree(
            &chain,
            RelSet::from_indices([1, 2])
        ));
    }

    #[test]
    fn every_enumerated_tree_matches_build_quality() {
        // On acyclic connected schemes, build() returns one of the
        // enumerated trees (up to edge orientation).
        for specs in [vec!["AB", "BC", "CD"], vec!["AX", "BX", "CX"], vec!["ABC", "BCD", "CDE"]] {
            let d = parse(&specs);
            let trees = JoinTree::all_join_trees(&d);
            assert!(!trees.is_empty(), "{specs:?}");
            let built = JoinTree::build(&d).unwrap();
            let canon = |t: &JoinTree| {
                let mut es: Vec<(usize, usize)> = t
                    .edges()
                    .iter()
                    .map(|&(a, b)| (a.min(b), a.max(b)))
                    .collect();
                es.sort_unstable();
                es
            };
            assert!(trees.iter().any(|t| canon(t) == canon(&built)), "{specs:?}");
        }
    }

    #[test]
    fn coherence_catches_non_acyclic_mst() {
        // A scheme whose MST is not coherent: the triangle again, but also a
        // 4-cycle {AB, BC, CD, DA}.
        let d = parse(&["AB", "BC", "CD", "DA"]);
        assert!(JoinTree::build(&d).is_none());
        assert!(!d.is_alpha_acyclic());
    }
}
