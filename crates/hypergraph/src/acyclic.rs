//! Degrees of acyclicity (Fagin 1983), used by the paper's Section 5.
//!
//! The paper's `C4` condition is satisfied by γ-acyclic pairwise-consistent
//! databases, and — under join-tree connectivity — by α-acyclic ones. This
//! module implements the full Fagin hierarchy
//! `Berge ⊂ γ ⊂ β ⊂ α` so the experiments can generate and classify
//! schemes at each level:
//!
//! * **α-acyclicity** via GYO ear reduction;
//! * **β-acyclicity** as α-acyclicity of every sub-family (exact, `O(2ⁿ)`);
//! * **γ-acyclicity** by direct γ-cycle search (exact, exponential — the
//!   schemes in this workspace have ≤ ~12 edges);
//! * **Berge-acyclicity** via union-find on the incidence bipartite graph.

use mjoin_relation::AttrSet;

use crate::relset::RelSet;
use crate::scheme::DbScheme;

/// The strongest acyclicity degree a scheme satisfies.
///
/// Ordered from weakest to strongest, so `>=` comparisons read naturally:
/// `scheme.acyclicity() >= Acyclicity::Gamma` means "γ-acyclic or better".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Acyclicity {
    /// Not even α-acyclic.
    Cyclic,
    /// α-acyclic but not β-acyclic.
    Alpha,
    /// β-acyclic but not γ-acyclic.
    Beta,
    /// γ-acyclic but not Berge-acyclic.
    Gamma,
    /// Berge-acyclic (the strongest degree).
    Berge,
}

impl DbScheme {
    /// Is the scheme α-acyclic? (GYO ear reduction succeeds.)
    ///
    /// An *ear* is an edge `E` whose every attribute is either exclusive to
    /// `E` or contained in some single other edge `F`. GYO repeatedly
    /// removes ears; the scheme is α-acyclic iff at most one edge remains.
    pub fn is_alpha_acyclic(&self) -> bool {
        self.alpha_acyclic_within(self.full_set())
    }

    /// α-acyclicity of the sub-family `within`.
    pub fn alpha_acyclic_within(&self, within: RelSet) -> bool {
        let mut alive = within;
        loop {
            let Some(ear) = self.find_ear(alive) else {
                return alive.len() <= 1;
            };
            alive.remove(ear);
        }
    }

    /// Finds an ear of the sub-family `alive`, if any.
    fn find_ear(&self, alive: RelSet) -> Option<usize> {
        if alive.len() <= 1 {
            return None;
        }
        for e in alive.iter() {
            let rest = alive.difference(RelSet::singleton(e));
            // Attributes of e shared with some other live edge.
            let shared = self.scheme(e).intersect(self.attrs_of(rest));
            if shared.is_empty() {
                // Isolated edge: trivially an ear.
                return Some(e);
            }
            // e is an ear iff the shared part fits inside a single witness.
            if rest.iter().any(|f| shared.is_subset_of(self.scheme(f))) {
                return Some(e);
            }
        }
        None
    }

    /// Is the scheme β-acyclic? (Every sub-family is α-acyclic.)
    ///
    /// Exact test; `O(2ⁿ)` GYO runs, fine for the small schemes used by the
    /// condition checkers and experiments.
    pub fn is_beta_acyclic(&self) -> bool {
        self.full_set()
            .subsets()
            .all(|s| self.alpha_acyclic_within(s))
    }

    /// Is the scheme Berge-acyclic? (The incidence bipartite graph —
    /// relation schemes on one side, attributes on the other — is a forest.)
    pub fn is_berge_acyclic(&self) -> bool {
        // Union-find over relation nodes (0..n) and attribute nodes
        // (n + attr index). Every (edge, attribute) incidence is a bipartite
        // edge; a cycle exists iff some incidence connects two already
        // connected nodes.
        let n = self.len();
        let all_attrs = self.attrs_of(self.full_set());
        let max_attr = all_attrs.iter().map(|a| a.index()).max().unwrap_or(0);
        let mut parent: Vec<usize> = (0..n + max_attr + 1).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for a in self.scheme(i).iter() {
                let (ri, ai) = (find(&mut parent, i), find(&mut parent, n + a.index()));
                if ri == ai {
                    return false;
                }
                parent[ri] = ai;
            }
        }
        true
    }

    /// Is the scheme γ-acyclic? (No γ-cycle exists — Fagin's definition,
    /// checked by exhaustive search.)
    ///
    /// A γ-cycle is a sequence `(S₁, x₁, S₂, x₂, …, S_m, x_m, S₁)` with
    /// `m ≥ 3`, distinct edges `Sᵢ`, distinct nodes `xᵢ`,
    /// `xᵢ ∈ Sᵢ ∩ Sᵢ₊₁`, and — for `i < m` — `xᵢ` in no other edge of the
    /// cycle.
    pub fn is_gamma_acyclic(&self) -> bool {
        let n = self.len();
        if n < 3 {
            return true;
        }
        // Try every starting edge; DFS extends (edges, nodes) sequences.
        for start in 0..n {
            if self.gamma_cycle_from(start) {
                return false;
            }
        }
        true
    }

    /// Does a γ-cycle exist that starts (canonically) at edge `start`?
    fn gamma_cycle_from(&self, start: usize) -> bool {
        let mut edges = vec![start];
        let mut nodes: Vec<AttrSet> = Vec::new(); // each xi as a singleton set
        self.gamma_dfs(start, &mut edges, &mut nodes)
    }

    fn gamma_dfs(&self, start: usize, edges: &mut Vec<usize>, nodes: &mut Vec<AttrSet>) -> bool {
        let last = *edges.last().expect("edges nonempty");
        // Try to close the cycle: need m >= 3 edges, a closing node
        // x_m ∈ S_m ∩ S_1 distinct from previous nodes (no exclusivity
        // requirement on x_m), and all interior constraints re-checked
        // against the final edge set.
        if edges.len() >= 3 {
            let closing_candidates = self.scheme(last).intersect(self.scheme(start));
            for x in closing_candidates.iter() {
                let xs = AttrSet::singleton(x);
                if nodes.iter().any(|n| n.intersects(xs)) {
                    continue;
                }
                if self.gamma_interior_ok(edges, nodes) {
                    return true;
                }
            }
        }
        // Extend the path with a fresh edge.
        for next in 0..self.len() {
            if edges.contains(&next) {
                continue;
            }
            let shared = self.scheme(last).intersect(self.scheme(next));
            for x in shared.iter() {
                let xs = AttrSet::singleton(x);
                if nodes.iter().any(|n| n.intersects(xs)) {
                    continue;
                }
                edges.push(next);
                nodes.push(xs);
                if self.gamma_dfs(start, edges, nodes) {
                    return true;
                }
                edges.pop();
                nodes.pop();
            }
        }
        false
    }

    /// Checks the interior-exclusivity constraint: for `i < m`, node `xᵢ`
    /// (connecting `Sᵢ` to `Sᵢ₊₁`) lies in no other edge of the cycle.
    fn gamma_interior_ok(&self, edges: &[usize], nodes: &[AttrSet]) -> bool {
        // nodes[i] connects edges[i] and edges[i+1]; all of nodes are
        // interior (the closing node x_m was checked separately and is
        // unconstrained).
        for (i, x) in nodes.iter().enumerate() {
            for (j, &e) in edges.iter().enumerate() {
                if j != i && j != i + 1 && x.is_subset_of(self.scheme(e)) {
                    return false;
                }
            }
        }
        true
    }

    /// The strongest acyclicity degree of the scheme.
    pub fn acyclicity(&self) -> Acyclicity {
        if self.is_berge_acyclic() {
            Acyclicity::Berge
        } else if self.is_gamma_acyclic() {
            Acyclicity::Gamma
        } else if self.is_beta_acyclic() {
            Acyclicity::Beta
        } else if self.is_alpha_acyclic() {
            Acyclicity::Alpha
        } else {
            Acyclicity::Cyclic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_relation::Catalog;

    fn parse(specs: &[&str]) -> DbScheme {
        let mut cat = Catalog::new();
        DbScheme::parse(&mut cat, specs).unwrap()
    }

    #[test]
    fn chain_is_berge_acyclic() {
        let d = parse(&["AB", "BC", "CD"]);
        assert_eq!(d.acyclicity(), Acyclicity::Berge);
        assert!(d.is_alpha_acyclic());
        assert!(d.is_beta_acyclic());
        assert!(d.is_gamma_acyclic());
    }

    #[test]
    fn triangle_is_cyclic() {
        let d = parse(&["AB", "BC", "CA"]);
        assert_eq!(d.acyclicity(), Acyclicity::Cyclic);
        assert!(!d.is_alpha_acyclic());
    }

    #[test]
    fn covered_triangle_is_alpha_only() {
        // {ABC, AB, BC, CA}: α-acyclic (ABC is a witness for every ear) but
        // the sub-family {AB, BC, CA} is the triangle, so not β-acyclic.
        let d = parse(&["ABC", "AB", "BC", "CA"]);
        assert!(d.is_alpha_acyclic());
        assert!(!d.is_beta_acyclic());
        assert_eq!(d.acyclicity(), Acyclicity::Alpha);
    }

    #[test]
    fn fagin_beta_not_gamma_example() {
        // {AB, BC, ABC} is β-acyclic but γ-cyclic: the γ-cycle is
        // (AB, a, ABC, c, BC, b, AB).
        let d = parse(&["AB", "BC", "ABC"]);
        assert!(d.is_beta_acyclic());
        assert!(!d.is_gamma_acyclic());
        assert_eq!(d.acyclicity(), Acyclicity::Beta);
    }

    #[test]
    fn two_edges_sharing_two_attrs_is_gamma_not_berge() {
        // {ABX, ABY}: Berge-cyclic (A and B both shared) but γ-acyclic
        // (γ-cycles need 3 distinct edges).
        let d = parse(&["ABX", "ABY"]);
        assert!(!d.is_berge_acyclic());
        assert!(d.is_gamma_acyclic());
        assert_eq!(d.acyclicity(), Acyclicity::Gamma);
    }

    #[test]
    fn star_is_berge_acyclic() {
        let d = parse(&["AX", "BX", "CX"]);
        // All share only X: incidence graph is a star — a tree.
        assert_eq!(d.acyclicity(), Acyclicity::Berge);
    }

    #[test]
    fn single_edge_is_acyclic_at_every_level() {
        let d = parse(&["ABC"]);
        assert_eq!(d.acyclicity(), Acyclicity::Berge);
    }

    #[test]
    fn disconnected_acyclic() {
        let d = parse(&["AB", "CD"]);
        assert!(d.is_alpha_acyclic());
        assert_eq!(d.acyclicity(), Acyclicity::Berge);
    }

    #[test]
    fn disconnected_with_cyclic_component() {
        let d = parse(&["AB", "BC", "CA", "XY"]);
        assert!(!d.is_alpha_acyclic());
        assert_eq!(d.acyclicity(), Acyclicity::Cyclic);
    }

    #[test]
    fn gyo_within_subfamily() {
        let d = parse(&["ABC", "AB", "BC", "CA"]);
        assert!(d.alpha_acyclic_within(RelSet::from_indices([1, 2]))); // {AB, BC}
        assert!(!d.alpha_acyclic_within(RelSet::from_indices([1, 2, 3]))); // triangle
    }

    #[test]
    fn hierarchy_is_monotone() {
        // Every level implies the ones below it, on a catalog of samples.
        for specs in [
            vec!["AB", "BC", "CD"],
            vec!["AB", "BC", "ABC"],
            vec!["ABX", "ABY"],
            vec!["AB", "BC", "CA"],
            vec!["ABC", "AB", "BC", "CA"],
            vec!["ABCD", "AB", "CD", "AC"],
        ] {
            let d = parse(&specs);
            if d.is_berge_acyclic() {
                assert!(d.is_gamma_acyclic(), "{specs:?}");
            }
            if d.is_gamma_acyclic() {
                assert!(d.is_beta_acyclic(), "{specs:?}");
            }
            if d.is_beta_acyclic() {
                assert!(d.is_alpha_acyclic(), "{specs:?}");
            }
        }
    }
}
