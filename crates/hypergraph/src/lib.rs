//! Database schemes viewed as hypergraphs.
//!
//! Section 2 of Tay's paper suggests imagining "a database scheme as a graph
//! with its relation schemes as nodes, and an edge between two nodes if and
//! only if they have nonempty intersection". This crate makes that picture
//! executable:
//!
//! * [`DbScheme`] — a database scheme: an indexed family of relation schemes
//!   over one attribute catalog;
//! * [`RelSet`] — a subset of a database scheme, as a 64-bit bitset (the
//!   paper's `D′ ⊆ D`);
//! * the paper's predicates: [`DbScheme::linked`], [`DbScheme::connected`],
//!   [`DbScheme::components`];
//! * subset enumeration used by the condition checkers in `mjoin`
//!   ([`DbScheme::connected_subsets`]), the streaming csg–cmp-pair
//!   enumerator behind DPccp ([`DbScheme::ccp_pairs`]), and the
//!   adjacency fast path for linkage tests
//!   ([`DbScheme::linked_disjoint`]);
//! * [`SchemeIndex`] — dense ranks and size levels over the connected
//!   subsets, backing flat `Vec` memo tables in the optimizer;
//! * [`FastMap`]/[`FastSet`] — deterministic splitmix64-hashed maps for
//!   single-word bitset keys;
//! * acyclicity machinery for Section 5: GYO reduction
//!   ([`DbScheme::is_alpha_acyclic`]), Berge-, β- and γ-acyclicity, and
//!   [`JoinTree`] construction for α-acyclic schemes.
//!
//! ```
//! use mjoin_relation::Catalog;
//! use mjoin_hypergraph::DbScheme;
//!
//! let mut cat = Catalog::new();
//! // The paper's running example: {ABC, BE, DF} is unconnected with
//! // components {ABC, BE} and {DF}.
//! let d = DbScheme::parse(&mut cat, &["ABC", "BE", "DF"]).unwrap();
//! assert!(!d.connected(d.full_set()));
//! assert_eq!(d.components(d.full_set()).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclic;
mod hash;
mod index;
mod jointree;
mod relset;
mod scheme;

pub use acyclic::Acyclicity;
pub use hash::{splitmix64, FastMap, FastSet, SplitMix64Hasher};
pub use index::SchemeIndex;
pub use jointree::JoinTree;
pub use relset::{RelSet, RelSetIter, SubsetIter, MAX_RELATIONS};
pub use scheme::DbScheme;
