//! Attributes, attribute sets (relation schemes) and the attribute catalog.

use std::fmt;

use crate::error::RelationError;

/// Maximum number of distinct attributes a [`Catalog`] can intern.
///
/// An [`AttrSet`] is a fixed-width bitset of `MAX_ATTRS` bits (four 64-bit
/// words), which keeps scheme operations branch-free and allocation-free.
/// 256 attributes is far beyond any workload in the paper or its
/// experiments; widening the constant (and `WORDS`) is the only change
/// required to lift the limit.
pub const MAX_ATTRS: usize = 256;

const WORDS: usize = MAX_ATTRS / 64;

/// An interned attribute: an index into a [`Catalog`].
///
/// The paper's attributes are symbols such as `A`, `B`, `C`; interning them
/// lets every scheme operation work on bitsets. Two attributes from
/// *different* catalogs must not be mixed — the types don't prevent it, but
/// every constructor in this workspace threads a single catalog per
/// database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Attribute(pub(crate) u16);

impl Attribute {
    /// The catalog index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an attribute from a raw catalog index.
    ///
    /// Callers are responsible for the index being valid in the catalog they
    /// pair it with; [`Catalog::name`] will return `None` for stray indices.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < MAX_ATTRS);
        Attribute(index as u16)
    }
}

/// A set of attributes — a relation scheme **R** in the paper's notation.
///
/// Implemented as a 256-bit bitset. All the scheme-level predicates of the
/// paper's Section 2 (`linked`, `disjoint`, …) reduce to a handful of word
/// operations on this type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet {
    words: [u64; WORDS],
}

impl AttrSet {
    /// The empty attribute set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet { words: [0; WORDS] }
    }

    /// A singleton set containing just `attr`.
    #[inline]
    pub fn singleton(attr: Attribute) -> Self {
        let mut s = Self::empty();
        s.insert(attr);
        s
    }

    /// Builds a set from an iterator of attributes.
    ///
    /// Also available through the `FromIterator` impl; the inherent method
    /// keeps call sites free of `use std::iter::FromIterator` turbofish.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        let mut s = Self::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Inserts an attribute.
    #[inline]
    pub fn insert(&mut self, attr: Attribute) {
        let i = attr.index();
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes an attribute.
    #[inline]
    pub fn remove(&mut self, attr: Attribute) {
        let i = attr.index();
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Does the set contain `attr`?
    #[inline]
    pub fn contains(self, attr: Attribute) -> bool {
        let i = attr.index();
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union `self ∪ other`.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words) {
            *w |= o;
        }
        AttrSet { words }
    }

    /// Set intersection `self ∩ other`.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words) {
            *w &= o;
        }
        AttrSet { words }
    }

    /// Set difference `self − other`.
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words) {
            *w &= !o;
        }
        AttrSet { words }
    }

    /// Do the two sets share at least one attribute?
    ///
    /// This is the paper's *linked* predicate specialized to two schemes:
    /// `R` is linked to `R'` iff `R ∩ R' ≠ ∅`.
    #[inline]
    pub fn intersects(self, other: Self) -> bool {
        self.words
            .iter()
            .zip(other.words)
            .any(|(&w, o)| w & o != 0)
    }

    /// Is `self` a subset of `other`?
    #[inline]
    pub fn is_subset_of(self, other: Self) -> bool {
        self.words
            .iter()
            .zip(other.words)
            .all(|(&w, o)| w & !o == 0)
    }

    /// Are the two sets disjoint?
    #[inline]
    pub fn is_disjoint(self, other: Self) -> bool {
        !self.intersects(other)
    }

    /// Iterates over the attributes in ascending index order.
    #[inline]
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter { set: self, word: 0 }
    }

    /// The smallest attribute in the set, if any.
    pub fn first(self) -> Option<Attribute> {
        self.iter().next()
    }
}

impl IntoIterator for AttrSet {
    type Item = Attribute;
    type IntoIter = AttrSetIter;
    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl std::iter::FromIterator<Attribute> for AttrSet {
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

impl std::ops::BitOr for AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for AttrSet {
    type Output = AttrSet;
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrSet{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.index())?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the attributes of an [`AttrSet`] in ascending order.
pub struct AttrSetIter {
    set: AttrSet,
    word: usize,
}

impl Iterator for AttrSetIter {
    type Item = Attribute;

    fn next(&mut self) -> Option<Attribute> {
        while self.word < WORDS {
            let w = self.set.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.set.words[self.word] &= w - 1; // clear lowest set bit
                return Some(Attribute::from_index(self.word * 64 + bit));
            }
            self.word += 1;
        }
        None
    }
}

/// Interning table mapping attribute names to [`Attribute`] indices.
///
/// The paper writes schemes as strings of single-letter attributes (`ABC`
/// for `{A, B, C}`); [`Catalog::scheme`] accepts exactly that notation when
/// every name is one character, and a comma-separated list (`"student,
/// course"`) otherwise.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    names: Vec<String>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A catalog pre-populated with the 26 single-letter attributes
    /// `A`–`Z`, in order, so that `Attribute::from_index(0)` is `A`.
    ///
    /// Convenient for transcribing the paper's examples.
    pub fn with_letters() -> Self {
        let mut c = Catalog::new();
        for ch in 'A'..='Z' {
            c.intern(&ch.to_string())
                .expect("26 letters fit in any catalog");
        }
        c
    }

    /// Interns `name`, returning its attribute (existing or fresh).
    ///
    /// # Errors
    /// Returns [`RelationError::CatalogFull`] once [`MAX_ATTRS`] distinct
    /// names have been interned.
    pub fn intern(&mut self, name: &str) -> Result<Attribute, RelationError> {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Ok(Attribute::from_index(i));
        }
        if self.names.len() >= MAX_ATTRS {
            return Err(RelationError::CatalogFull);
        }
        self.names.push(name.to_owned());
        Ok(Attribute::from_index(self.names.len() - 1))
    }

    /// Looks up an already-interned attribute by name.
    pub fn lookup(&self, name: &str) -> Option<Attribute> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(Attribute::from_index)
    }

    /// The name of `attr`, if it belongs to this catalog.
    pub fn name(&self, attr: Attribute) -> Option<&str> {
        self.names.get(attr.index()).map(String::as_str)
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Parses a scheme description, interning attributes as needed.
    ///
    /// * `"ABC"` (no commas, no spaces) → the attributes `A`, `B`, `C`;
    /// * `"student,course"` → the attributes `student` and `course`.
    pub fn scheme(&mut self, spec: &str) -> Result<AttrSet, RelationError> {
        let mut set = AttrSet::empty();
        if spec.contains(',') {
            for part in spec.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(RelationError::EmptyAttributeName);
                }
                set.insert(self.intern(part)?);
            }
        } else {
            for ch in spec.chars() {
                if ch.is_whitespace() {
                    continue;
                }
                set.insert(self.intern(&ch.to_string())?);
            }
        }
        if set.is_empty() {
            return Err(RelationError::EmptyScheme);
        }
        Ok(set)
    }

    /// Renders an attribute set using this catalog's names.
    ///
    /// Single-character names are concatenated (`ABC`); longer names are
    /// joined with commas.
    pub fn render(&self, set: AttrSet) -> String {
        let names: Vec<&str> = set
            .iter()
            .map(|a| self.name(a).unwrap_or("?"))
            .collect();
        if names.iter().all(|n| n.chars().count() == 1) {
            names.concat()
        } else {
            names.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(indices: &[usize]) -> AttrSet {
        AttrSet::from_iter(indices.iter().map(|&i| Attribute::from_index(i)))
    }

    #[test]
    fn empty_set_is_empty() {
        assert!(AttrSet::empty().is_empty());
        assert_eq!(AttrSet::empty().len(), 0);
        assert_eq!(AttrSet::empty().iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let a = Attribute::from_index(3);
        let b = Attribute::from_index(130); // exercise a high word
        let mut s = AttrSet::empty();
        s.insert(a);
        s.insert(b);
        assert!(s.contains(a));
        assert!(s.contains(b));
        assert_eq!(s.len(), 2);
        s.remove(a);
        assert!(!s.contains(a));
        assert!(s.contains(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let s = attrs(&[0, 1, 2]);
        let t = attrs(&[2, 3]);
        assert_eq!(s.union(t), attrs(&[0, 1, 2, 3]));
        assert_eq!(s.intersect(t), attrs(&[2]));
        assert_eq!(s.difference(t), attrs(&[0, 1]));
        assert!(s.intersects(t));
        assert!(!s.is_disjoint(t));
        assert!(attrs(&[0, 1]).is_disjoint(attrs(&[2, 3])));
        assert!(attrs(&[1]).is_subset_of(s));
        assert!(!s.is_subset_of(t));
        assert!(AttrSet::empty().is_subset_of(t));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = attrs(&[200, 5, 64, 63]);
        let got: Vec<usize> = s.iter().map(|a| a.index()).collect();
        assert_eq!(got, vec![5, 63, 64, 200]);
        assert_eq!(s.first(), Some(Attribute::from_index(5)));
    }

    #[test]
    fn operators_match_methods() {
        let s = attrs(&[0, 1]);
        let t = attrs(&[1, 2]);
        assert_eq!(s | t, s.union(t));
        assert_eq!(s & t, s.intersect(t));
        assert_eq!(s - t, s.difference(t));
    }

    #[test]
    fn catalog_interning_is_idempotent() {
        let mut c = Catalog::new();
        let a1 = c.intern("A").unwrap();
        let a2 = c.intern("A").unwrap();
        assert_eq!(a1, a2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.name(a1), Some("A"));
        assert_eq!(c.lookup("A"), Some(a1));
        assert_eq!(c.lookup("B"), None);
    }

    #[test]
    fn catalog_letters() {
        let c = Catalog::with_letters();
        assert_eq!(c.len(), 26);
        assert_eq!(c.name(Attribute::from_index(0)), Some("A"));
        assert_eq!(c.name(Attribute::from_index(25)), Some("Z"));
    }

    #[test]
    fn catalog_full() {
        let mut c = Catalog::new();
        for i in 0..MAX_ATTRS {
            c.intern(&format!("a{i}")).unwrap();
        }
        assert!(matches!(
            c.intern("overflow"),
            Err(RelationError::CatalogFull)
        ));
        // Existing names still resolve.
        assert!(c.intern("a0").is_ok());
    }

    #[test]
    fn scheme_parsing_letters_and_words() {
        let mut c = Catalog::new();
        let abc = c.scheme("ABC").unwrap();
        assert_eq!(abc.len(), 3);
        assert_eq!(c.render(abc), "ABC");

        let sc = c.scheme("student, course").unwrap();
        assert_eq!(sc.len(), 2);
        assert_eq!(c.render(sc), "student,course");

        assert!(matches!(c.scheme(""), Err(RelationError::EmptyScheme)));
        assert!(matches!(
            c.scheme("a,,b"),
            Err(RelationError::EmptyAttributeName)
        ));
    }

    #[test]
    fn scheme_parsing_is_set_like() {
        let mut c = Catalog::new();
        let s1 = c.scheme("AAB").unwrap();
        let s2 = c.scheme("AB").unwrap();
        assert_eq!(s1, s2);
    }
}
