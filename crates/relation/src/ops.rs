//! Unary and set-level relational operators.
//!
//! These back the paper's later sections: projection (`t[X]`), semijoins
//! (Bernstein–Chiu reduction, Section 5), consistency, and the set
//! operations that Section 5 re-interprets ⋈ over.

use crate::attr::AttrSet;
use crate::error::RelationError;
use crate::relation::{Relation, Tuple};
use crate::value::Value;

impl Relation {
    /// Projection `π_X(R)`: restriction of every tuple to `X`, deduplicated.
    ///
    /// # Errors
    /// [`RelationError::NotASubscheme`] if `X ⊄ scheme`.
    pub fn project(&self, target: AttrSet) -> Result<Relation, RelationError> {
        if !target.is_subset_of(self.scheme()) {
            return Err(RelationError::NotASubscheme);
        }
        let cols: Vec<usize> = target
            .iter()
            .map(|a| self.column_of(a).expect("subset attr present"))
            .collect();
        let tuples: Vec<Tuple> = self
            .tuples()
            .iter()
            .map(|t| {
                Tuple::new(cols.iter().map(|&c| t.values()[c].clone()).collect())
            })
            .collect();
        Ok(Relation::from_tuples_unchecked(target, tuples))
    }

    /// Selection: keeps the tuples satisfying `predicate`.
    ///
    /// The predicate sees values in canonical (ascending-attribute) order.
    pub fn select<F: FnMut(&Tuple) -> bool>(&self, mut predicate: F) -> Relation {
        let tuples: Vec<Tuple> = self
            .tuples()
            .iter()
            .filter(|t| predicate(t))
            .cloned()
            .collect();
        Relation::from_tuples_unchecked(self.scheme(), tuples)
    }

    /// Semijoin `R ⋉ S`: the tuples of `R` that join with at least one tuple
    /// of `S`. When the schemes are disjoint this keeps all of `R` iff `S`
    /// is nonempty.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.scheme().intersect(other.scheme());
        if shared.is_empty() {
            return if other.is_empty() {
                Relation::empty(self.scheme())
            } else {
                self.clone()
            };
        }
        let other_proj = other.project(shared).expect("shared ⊆ other");
        let cols: Vec<usize> = shared
            .iter()
            .map(|a| self.column_of(a).expect("shared ⊆ self"))
            .collect();
        self.select(|t| {
            let key = Tuple::new(cols.iter().map(|&c| t.values()[c].clone()).collect());
            other_proj.contains(&key)
        })
    }

    /// Antijoin `R ▷ S`: the tuples of `R` that join with *no* tuple of `S`.
    pub fn antijoin(&self, other: &Relation) -> Relation {
        let keep = self.semijoin(other);
        self.select(|t| !keep.contains(t))
    }

    /// Set union (schemes must match).
    ///
    /// # Panics
    /// Panics if the schemes differ — union of unlike schemes is a type
    /// error in the caller, not a data condition.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.scheme(), other.scheme(), "union requires equal schemes");
        let mut tuples: Vec<Tuple> = self.tuples().to_vec();
        tuples.extend(other.tuples().iter().cloned());
        Relation::from_tuples_unchecked(self.scheme(), tuples)
    }

    /// Set intersection (schemes must match; see [`Relation::union`]).
    pub fn intersection(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.scheme(),
            other.scheme(),
            "intersection requires equal schemes"
        );
        self.select(|t| other.contains(t))
    }

    /// Set difference `R − S` (schemes must match; see [`Relation::union`]).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.scheme(),
            other.scheme(),
            "difference requires equal schemes"
        );
        self.select(|t| !other.contains(t))
    }

    /// Are `self` and `other` *consistent* in the sense of Beeri et al.:
    /// `R[R ∩ R'] = R'[R ∩ R']`?
    ///
    /// Pairwise consistency across a database is the precondition of the
    /// paper's Section 5 results (`C4` via acyclicity).
    pub fn consistent_with(&self, other: &Relation) -> bool {
        let shared = self.scheme().intersect(other.scheme());
        if shared.is_empty() {
            // Vacuously consistent: both projections are the empty-scheme
            // relation containing the empty tuple (or nothing, if a side is
            // empty). We follow the convention that disjoint schemes are
            // consistent unless exactly one side is empty.
            return self.is_empty() == other.is_empty();
        }
        let a = self.project(shared).expect("shared ⊆ self");
        let b = other.project(shared).expect("shared ⊆ other");
        a == b
    }

    /// All values appearing in column `col` (deduplicated, sorted).
    pub fn column_values(&self, col: usize) -> Vec<Value> {
        let mut vs: Vec<Value> = self
            .tuples()
            .iter()
            .map(|t| t.values()[col].clone())
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn rel(spec: &str, rows: Vec<Vec<i64>>) -> Relation {
        let s = Catalog::with_letters().scheme(spec).unwrap();
        Relation::from_int_rows(s, rows).unwrap()
    }

    #[test]
    fn projection_dedups() {
        let r = rel("AB", vec![vec![1, 10], vec![1, 20], vec![2, 10]]);
        let a = Catalog::with_letters().scheme("A").unwrap();
        let p = r.project(a).unwrap();
        assert_eq!(p.tau(), 2);
    }

    #[test]
    fn projection_requires_subscheme() {
        let r = rel("AB", vec![vec![1, 2]]);
        let c = Catalog::with_letters().scheme("C").unwrap();
        assert_eq!(r.project(c).unwrap_err(), RelationError::NotASubscheme);
    }

    #[test]
    fn projection_to_full_scheme_is_identity() {
        let r = rel("AB", vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(r.project(r.scheme()).unwrap(), r);
    }

    #[test]
    fn selection_filters() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let s = r.select(|t| t.values()[0].as_int().unwrap() >= 2);
        assert_eq!(s.tau(), 2);
    }

    #[test]
    fn semijoin_keeps_matching() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let s = rel("BC", vec![vec![10, 0], vec![30, 0]]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.tau(), 2);
        assert_eq!(sj.scheme(), r.scheme());
    }

    #[test]
    fn semijoin_disjoint_schemes() {
        let r = rel("AB", vec![vec![1, 2]]);
        let nonempty = rel("CD", vec![vec![1, 1]]);
        let empty = Relation::empty(Catalog::with_letters().scheme("CD").unwrap());
        assert_eq!(r.semijoin(&nonempty), r);
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn antijoin_complements_semijoin() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let s = rel("BC", vec![vec![10, 0]]);
        let sj = r.semijoin(&s);
        let aj = r.antijoin(&s);
        assert_eq!(sj.tau() + aj.tau(), r.tau());
        assert!(sj.tuples().iter().all(|t| !aj.contains(t)));
    }

    #[test]
    fn set_operations() {
        let r = rel("A", vec![vec![1], vec![2]]);
        let s = rel("A", vec![vec![2], vec![3]]);
        assert_eq!(r.union(&s).tau(), 3);
        assert_eq!(r.intersection(&s).tau(), 1);
        assert_eq!(r.difference(&s).tau(), 1);
    }

    #[test]
    #[should_panic(expected = "union requires equal schemes")]
    fn union_rejects_mismatched_schemes() {
        let r = rel("A", vec![vec![1]]);
        let s = rel("B", vec![vec![1]]);
        let _ = r.union(&s);
    }

    #[test]
    fn consistency() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20]]);
        let s_consistent = rel("BC", vec![vec![10, 0], vec![20, 1]]);
        let s_inconsistent = rel("BC", vec![vec![10, 0], vec![99, 1]]);
        assert!(r.consistent_with(&s_consistent));
        assert!(!r.consistent_with(&s_inconsistent));
    }

    #[test]
    fn consistency_semijoin_reduction_fixpoint() {
        // After mutual semijoin reduction, two relations are consistent.
        let r = rel("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
        let s = rel("BC", vec![vec![10, 0], vec![40, 1]]);
        let r2 = r.semijoin(&s);
        let s2 = s.semijoin(&r2);
        assert!(r2.consistent_with(&s2));
    }

    #[test]
    fn column_values_sorted_dedup() {
        let r = rel("AB", vec![vec![3, 0], vec![1, 0], vec![3, 1]]);
        assert_eq!(
            r.column_values(0),
            vec![Value::Int(1), Value::Int(3)]
        );
    }
}
