//! Relation states: canonical sets of tuples over a scheme.

use std::fmt;

use crate::attr::{AttrSet, Attribute};
use crate::error::RelationError;
use crate::value::Value;

/// A tuple over a relation scheme.
///
/// Values are stored in *canonical order*: ascending order of the attribute
/// indices of the owning relation's scheme. A tuple is meaningless without
/// its scheme; [`Relation`] keeps the two together.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values already in canonical order.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into_boxed_slice())
    }

    /// The values, in canonical (ascending-attribute) order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.0.len()
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// A relation state: a finite set of tuples over a scheme.
///
/// Invariants (enforced by every constructor):
/// * every tuple has arity `scheme.len()`, values in canonical order;
/// * tuples are sorted and deduplicated, so `==`, hashing and iteration are
///   deterministic.
///
/// The paper's cost measure is `τ(R)` — the number of tuples — exposed as
/// [`Relation::tau`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    scheme: AttrSet,
    /// Ascending attribute list; `attrs[k]` is the attribute of column `k`.
    attrs: Box<[Attribute]>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// The empty relation over `scheme`.
    pub fn empty(scheme: AttrSet) -> Self {
        Relation {
            scheme,
            attrs: scheme.iter().collect(),
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from rows whose values are in canonical
    /// (ascending-attribute) order. Rows are sorted and deduplicated.
    ///
    /// # Errors
    /// [`RelationError::ArityMismatch`] if any row's width differs from the
    /// scheme's arity.
    pub fn from_rows(
        scheme: AttrSet,
        rows: Vec<Vec<Value>>,
    ) -> Result<Self, RelationError> {
        let arity = scheme.len();
        let mut tuples = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != arity {
                return Err(RelationError::ArityMismatch {
                    expected: arity,
                    got: row.len(),
                });
            }
            tuples.push(Tuple::new(row));
        }
        Ok(Self::from_tuples_unchecked(scheme, tuples))
    }

    /// Builds a relation from integer rows — the common case in generators
    /// and tests.
    pub fn from_int_rows(
        scheme: AttrSet,
        rows: Vec<Vec<i64>>,
    ) -> Result<Self, RelationError> {
        Self::from_rows(
            scheme,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        )
    }

    /// Internal constructor: tuples must already have the right arity.
    pub(crate) fn from_tuples_unchecked(scheme: AttrSet, mut tuples: Vec<Tuple>) -> Self {
        tuples.sort_unstable();
        tuples.dedup();
        Relation {
            scheme,
            attrs: scheme.iter().collect(),
            tuples,
        }
    }

    /// The relation's scheme.
    #[inline]
    pub fn scheme(&self) -> AttrSet {
        self.scheme
    }

    /// The scheme as an ascending attribute slice (`attrs[k]` is column `k`).
    #[inline]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// τ(R): the number of tuples. This is the paper's cost measure.
    #[inline]
    pub fn tau(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// Is the relation state empty (`R = φ`)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, sorted canonically.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Column index of `attr` within this relation, if present.
    #[inline]
    pub fn column_of(&self, attr: Attribute) -> Option<usize> {
        // attrs is ascending, so binary search is exact.
        self.attrs.binary_search(&attr).ok()
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.binary_search(tuple).is_ok()
    }

    /// Natural join with the default algorithm (hash join).
    ///
    /// When the schemes are disjoint this degenerates to the Cartesian
    /// product, exactly as in the paper's definition.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        crate::join::join(self, other, crate::join::JoinAlgorithm::Hash)
    }

    /// Natural join with an explicit algorithm.
    pub fn natural_join_with(
        &self,
        other: &Relation,
        algorithm: crate::join::JoinAlgorithm,
    ) -> Relation {
        crate::join::join(self, other, algorithm)
    }

    /// Natural join charging every emitted tuple to `guard`: the join
    /// stops with [`mjoin_guard::MjoinError::BudgetExceeded`] as soon as
    /// the output would pass the budget's tuple cap, instead of
    /// materializing an intermediate the budget forbids.
    pub fn natural_join_guarded(
        &self,
        other: &Relation,
        algorithm: crate::join::JoinAlgorithm,
        guard: &mjoin_guard::Guard,
    ) -> Result<Relation, mjoin_guard::MjoinError> {
        crate::join::join_guarded(self, other, algorithm, guard)
    }

    /// Partitioned parallel hash join across `threads` scoped workers, all
    /// charging `guard`. Bit-identical to the sequential hash join at any
    /// thread count (the output relation is canonical); `threads <= 1`
    /// runs the sequential kernel directly.
    pub fn natural_join_partitioned(
        &self,
        other: &Relation,
        threads: usize,
        guard: &mjoin_guard::Guard,
    ) -> Result<Relation, mjoin_guard::MjoinError> {
        crate::join::join_partitioned(self, other, threads, guard)
    }
}

impl Relation {
    /// Renders the relation as an aligned text table using the catalog's
    /// attribute names — the way the paper prints its example states.
    ///
    /// ```
    /// use mjoin_relation::{Catalog, Relation};
    /// let mut cat = Catalog::new();
    /// let ab = cat.scheme("AB").unwrap();
    /// let r = Relation::from_int_rows(ab, vec![vec![1, 10], vec![2, 20]]).unwrap();
    /// let text = r.to_text(&cat);
    /// assert!(text.starts_with("A B"));
    /// ```
    pub fn to_text(&self, catalog: &crate::attr::Catalog) -> String {
        let headers: Vec<String> = self
            .attrs
            .iter()
            .map(|&a| catalog.name(a).unwrap_or("?").to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect::<Vec<_>>()
                .join(" ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&headers));
        for row in &rendered {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({:?}, {} tuples)", self.scheme, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn scheme(spec: &str) -> AttrSet {
        Catalog::with_letters().scheme(spec).unwrap()
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(scheme("AB"));
        assert_eq!(r.tau(), 0);
        assert!(r.is_empty());
        assert_eq!(r.attrs().len(), 2);
    }

    #[test]
    fn from_rows_dedups_and_sorts() {
        let r = Relation::from_int_rows(
            scheme("AB"),
            vec![vec![2, 20], vec![1, 10], vec![2, 20]],
        )
        .unwrap();
        assert_eq!(r.tau(), 2);
        assert_eq!(r.tuples()[0].values()[0], Value::Int(1));
        assert_eq!(r.tuples()[1].values()[0], Value::Int(2));
    }

    #[test]
    fn from_rows_checks_arity() {
        let err = Relation::from_int_rows(scheme("AB"), vec![vec![1]]).unwrap_err();
        assert_eq!(err, RelationError::ArityMismatch { expected: 2, got: 1 });
    }

    #[test]
    fn equality_is_set_equality() {
        let r1 = Relation::from_int_rows(scheme("A"), vec![vec![1], vec![2]]).unwrap();
        let r2 = Relation::from_int_rows(scheme("A"), vec![vec![2], vec![1]]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn column_lookup() {
        let mut cat = Catalog::with_letters();
        let s = cat.scheme("ACE").unwrap();
        let r = Relation::empty(s);
        let a = cat.lookup("A").unwrap();
        let c = cat.lookup("C").unwrap();
        let e = cat.lookup("E").unwrap();
        let b = cat.lookup("B").unwrap();
        assert_eq!(r.column_of(a), Some(0));
        assert_eq!(r.column_of(c), Some(1));
        assert_eq!(r.column_of(e), Some(2));
        assert_eq!(r.column_of(b), None);
    }

    #[test]
    fn contains_checks_membership() {
        let r = Relation::from_int_rows(scheme("AB"), vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert!(r.contains(&Tuple::new(vec![Value::Int(1), Value::Int(2)])));
        assert!(!r.contains(&Tuple::new(vec![Value::Int(1), Value::Int(5)])));
    }

    #[test]
    fn tuple_api() {
        let t = Tuple::from(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.values()[1], Value::str("x"));
    }
}
