//! Natural-join implementations.
//!
//! The paper defines the natural join
//! `R ⋈ R' = { t over R ∪ R' : t[R] ∈ R and t[R'] ∈ R' }` and measures a
//! strategy by how many tuples its joins emit — never by *how* each join is
//! executed. Three classic algorithms are provided so the benches can show
//! that τ is indeed execution-independent while wall-clock cost is not:
//! hash join (default), sort-merge join, and nested-loop join. All three
//! return the same canonical [`Relation`].

use crate::attr::{AttrSet, Attribute};
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use mjoin_guard::{failpoints, Guard, MjoinError};
use mjoin_obs::{incr, Counter};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Output-tuple charges are flushed to the guard in batches of this size,
/// so a guarded join costs one counter increment per emitted row plus one
/// atomic per batch.
const CHARGE_BATCH: u64 = 1024;

/// Accumulates emitted-tuple counts and flushes them to the guard in
/// batches. The final partial batch is flushed by [`Charger::finish`].
struct Charger<'g> {
    guard: &'g Guard,
    pending: u64,
}

impl<'g> Charger<'g> {
    fn new(guard: &'g Guard) -> Self {
        Charger { guard, pending: 0 }
    }

    #[inline]
    fn emit(&mut self) -> Result<(), MjoinError> {
        self.pending += 1;
        if self.pending >= CHARGE_BATCH {
            let n = std::mem::take(&mut self.pending);
            self.guard.charge_tuples(n)?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<(), MjoinError> {
        let n = std::mem::take(&mut self.pending);
        if n > 0 {
            self.guard.charge_tuples(n)?;
        }
        Ok(())
    }
}

/// Physical join algorithm selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinAlgorithm {
    /// Build a hash table on the smaller input keyed by the shared
    /// attributes, probe with the larger. O(|R| + |S| + |out|) expected.
    #[default]
    Hash,
    /// Sort both inputs by the shared attributes and merge.
    SortMerge,
    /// Compare every pair of tuples. O(|R|·|S|); kept as the correctness
    /// oracle for the other two.
    NestedLoop,
}

/// Column plan for assembling an output tuple from a pair of matching
/// input tuples.
struct JoinPlan {
    out_scheme: AttrSet,
    /// Shared attribute columns in `left` (ascending by attribute).
    left_key: Vec<usize>,
    /// Shared attribute columns in `right`, in the same attribute order as
    /// `left_key`.
    right_key: Vec<usize>,
    /// For each output column: (from_left, source column index).
    sources: Vec<(bool, usize)>,
}

impl JoinPlan {
    fn new(left: &Relation, right: &Relation) -> Self {
        let shared = left.scheme().intersect(right.scheme());
        let out_scheme = left.scheme().union(right.scheme());
        let left_key: Vec<usize> = shared
            .iter()
            .map(|a| left.column_of(a).expect("shared attr in left"))
            .collect();
        let right_key: Vec<usize> = shared
            .iter()
            .map(|a| right.column_of(a).expect("shared attr in right"))
            .collect();
        let sources = out_scheme
            .iter()
            .map(|a: Attribute| match left.column_of(a) {
                Some(c) => (true, c),
                None => (false, right.column_of(a).expect("attr in one side")),
            })
            .collect();
        JoinPlan {
            out_scheme,
            left_key,
            right_key,
            sources,
        }
    }

    #[inline]
    fn emit(&self, l: &Tuple, r: &Tuple) -> Tuple {
        let values: Vec<Value> = self
            .sources
            .iter()
            .map(|&(from_left, c)| {
                if from_left {
                    l.values()[c].clone()
                } else {
                    r.values()[c].clone()
                }
            })
            .collect();
        Tuple::new(values)
    }

    #[inline]
    fn key<'a>(&self, t: &'a Tuple, left: bool) -> Vec<&'a Value> {
        let cols = if left { &self.left_key } else { &self.right_key };
        cols.iter().map(|&c| &t.values()[c]).collect()
    }
}

/// Joins two relations with the requested algorithm.
pub(crate) fn join(left: &Relation, right: &Relation, algorithm: JoinAlgorithm) -> Relation {
    join_guarded(left, right, algorithm, &Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// Joins two relations, charging every emitted tuple to `guard` so runaway
/// intermediates stop at the budget instead of exhausting memory.
pub(crate) fn join_guarded(
    left: &Relation,
    right: &Relation,
    algorithm: JoinAlgorithm,
    guard: &Guard,
) -> Result<Relation, MjoinError> {
    failpoints::hit("relation::join")?;
    incr(Counter::KernelJoins, 1);
    let plan = JoinPlan::new(left, right);
    let tuples = match algorithm {
        JoinAlgorithm::Hash => hash_join(left, right, &plan, guard)?,
        JoinAlgorithm::SortMerge => sort_merge_join(left, right, &plan, guard)?,
        JoinAlgorithm::NestedLoop => nested_loop_join(left, right, &plan, guard)?,
    };
    incr(Counter::KernelTuplesEmitted, tuples.len() as u64);
    Ok(Relation::from_tuples_unchecked(plan.out_scheme, tuples))
}

fn hash_join(
    left: &Relation,
    right: &Relation,
    plan: &JoinPlan,
    guard: &Guard,
) -> Result<Vec<Tuple>, MjoinError> {
    // Build on the smaller side.
    let (build, probe, build_is_left) = if left.tau() <= right.tau() {
        (left, right, true)
    } else {
        (right, left, false)
    };
    let mut table: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::with_capacity(build.tuples().len());
    for t in build.tuples() {
        table.entry(plan.key(t, build_is_left)).or_default().push(t);
    }
    incr(Counter::KernelTuplesProbed, probe.tuples().len() as u64);
    let mut charger = Charger::new(guard);
    let mut out = Vec::new();
    for t in probe.tuples() {
        if let Some(matches) = table.get(&plan.key(t, !build_is_left)) {
            for m in matches {
                charger.emit()?;
                if build_is_left {
                    out.push(plan.emit(m, t));
                } else {
                    out.push(plan.emit(t, m));
                }
            }
        }
    }
    charger.finish()?;
    Ok(out)
}

/// Partitioned parallel hash join: both sides are split into `threads`
/// partitions by a deterministic hash of the shared-attribute key, one
/// scoped worker joins each partition pair, and the outputs are
/// concatenated. Matching tuples always hash to the same partition, so the
/// union of the partition joins is exactly the sequential join; the
/// canonical sort+dedup in [`Relation::from_tuples_unchecked`] then makes
/// the result bit-identical at any thread count. Every worker charges the
/// same shared `guard` (its counters are atomic).
pub(crate) fn join_partitioned(
    left: &Relation,
    right: &Relation,
    threads: usize,
    guard: &Guard,
) -> Result<Relation, MjoinError> {
    failpoints::hit("relation::join")?;
    incr(Counter::KernelJoins, 1);
    let plan = JoinPlan::new(left, right);
    if threads <= 1 {
        let tuples = hash_join(left, right, &plan, guard)?;
        incr(Counter::KernelTuplesEmitted, tuples.len() as u64);
        return Ok(Relation::from_tuples_unchecked(plan.out_scheme, tuples));
    }
    let part_of = |t: &Tuple, is_left: bool| -> usize {
        // DefaultHasher::new() is keyed with constants, so partitioning is
        // deterministic — not that correctness needs it (any partitioning
        // by key yields the same set of matches).
        let mut h = std::collections::hash_map::DefaultHasher::new();
        plan.key(t, is_left).hash(&mut h);
        (h.finish() % threads as u64) as usize
    };
    let mut lparts: Vec<Vec<&Tuple>> = vec![Vec::new(); threads];
    for t in left.tuples() {
        lparts[part_of(t, true)].push(t);
    }
    let mut rparts: Vec<Vec<&Tuple>> = vec![Vec::new(); threads];
    for t in right.tuples() {
        rparts[part_of(t, false)].push(t);
    }
    let plan_ref = &plan;
    let results: Vec<Result<Vec<Tuple>, MjoinError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = lparts
            .iter()
            .zip(&rparts)
            .map(|(lp, rp)| {
                scope.spawn(move || hash_join_parts(lp, rp, plan_ref, guard))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    incr(Counter::KernelTuplesEmitted, out.len() as u64);
    Ok(Relation::from_tuples_unchecked(plan.out_scheme, out))
}

/// One partition's hash join — `hash_join` over tuple slices instead of
/// whole relations.
fn hash_join_parts(
    lp: &[&Tuple],
    rp: &[&Tuple],
    plan: &JoinPlan,
    guard: &Guard,
) -> Result<Vec<Tuple>, MjoinError> {
    let (build, probe, build_is_left) = if lp.len() <= rp.len() {
        (lp, rp, true)
    } else {
        (rp, lp, false)
    };
    let mut table: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::with_capacity(build.len());
    for &t in build {
        table.entry(plan.key(t, build_is_left)).or_default().push(t);
    }
    incr(Counter::KernelTuplesProbed, probe.len() as u64);
    let mut charger = Charger::new(guard);
    let mut out = Vec::new();
    for &t in probe {
        if let Some(matches) = table.get(&plan.key(t, !build_is_left)) {
            for m in matches {
                charger.emit()?;
                if build_is_left {
                    out.push(plan.emit(m, t));
                } else {
                    out.push(plan.emit(t, m));
                }
            }
        }
    }
    charger.finish()?;
    Ok(out)
}

fn sort_merge_join(
    left: &Relation,
    right: &Relation,
    plan: &JoinPlan,
    guard: &Guard,
) -> Result<Vec<Tuple>, MjoinError> {
    // Extract each side's shared-attribute key exactly once, then sort the
    // (key, tuple) pairs. The merge below compares the precomputed keys, so
    // neither sorting nor group-boundary probing allocates.
    let mut ls: Vec<(Vec<&Value>, &Tuple)> = left
        .tuples()
        .iter()
        .map(|t| (plan.key(t, true), t))
        .collect();
    let mut rs: Vec<(Vec<&Value>, &Tuple)> = right
        .tuples()
        .iter()
        .map(|t| (plan.key(t, false), t))
        .collect();
    ls.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    rs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    incr(Counter::KernelTuplesProbed, rs.len() as u64);

    let mut charger = Charger::new(guard);
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match ls[i].0.cmp(&rs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the group boundaries on both sides, emit the product.
                let i_end = (i..ls.len())
                    .find(|&k| ls[k].0 != ls[i].0)
                    .unwrap_or(ls.len());
                let j_end = (j..rs.len())
                    .find(|&k| rs[k].0 != rs[j].0)
                    .unwrap_or(rs.len());
                for (_, l) in &ls[i..i_end] {
                    for (_, r) in &rs[j..j_end] {
                        charger.emit()?;
                        out.push(plan.emit(l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    charger.finish()?;
    Ok(out)
}

fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    plan: &JoinPlan,
    guard: &Guard,
) -> Result<Vec<Tuple>, MjoinError> {
    incr(Counter::KernelTuplesProbed, right.tuples().len() as u64);
    let mut charger = Charger::new(guard);
    let mut out = Vec::new();
    for l in left.tuples() {
        let lk = plan.key(l, true);
        for r in right.tuples() {
            if lk == plan.key(r, false) {
                charger.emit()?;
                out.push(plan.emit(l, r));
            }
        }
    }
    charger.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn rel(spec: &str, rows: Vec<Vec<i64>>) -> Relation {
        let s = Catalog::with_letters().scheme(spec).unwrap();
        Relation::from_int_rows(s, rows).unwrap()
    }

    const ALGOS: [JoinAlgorithm; 3] = [
        JoinAlgorithm::Hash,
        JoinAlgorithm::SortMerge,
        JoinAlgorithm::NestedLoop,
    ];

    #[test]
    fn join_on_shared_attribute() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20], vec![3, 20]]);
        let s = rel("BC", vec![vec![10, 100], vec![20, 200], vec![20, 201]]);
        for alg in ALGOS {
            let j = r.natural_join_with(&s, alg);
            // B=10: 1 pair. B=20: 2 left × 2 right = 4 pairs.
            assert_eq!(j.tau(), 5, "{alg:?}");
            assert_eq!(j.scheme().len(), 3);
        }
    }

    #[test]
    fn disjoint_schemes_give_cartesian_product() {
        let r = rel("AB", vec![vec![1, 2], vec![3, 4]]);
        let s = rel("CD", vec![vec![5, 6], vec![7, 8], vec![9, 10]]);
        for alg in ALGOS {
            let j = r.natural_join_with(&s, alg);
            assert_eq!(j.tau(), r.tau() * s.tau(), "{alg:?}");
        }
    }

    #[test]
    fn join_with_empty_relation_is_empty() {
        let r = rel("AB", vec![vec![1, 2]]);
        let s = Relation::empty(Catalog::with_letters().scheme("BC").unwrap());
        for alg in ALGOS {
            assert!(r.natural_join_with(&s, alg).is_empty(), "{alg:?}");
            assert!(s.natural_join_with(&r, alg).is_empty(), "{alg:?}");
        }
    }

    #[test]
    fn join_over_full_overlap_is_intersection() {
        let r = rel("AB", vec![vec![1, 2], vec![3, 4]]);
        let s = rel("AB", vec![vec![3, 4], vec![5, 6]]);
        for alg in ALGOS {
            let j = r.natural_join_with(&s, alg);
            assert_eq!(j.tau(), 1, "{alg:?}");
            assert_eq!(j.tuples()[0].values()[0], Value::Int(3));
        }
    }

    #[test]
    fn join_is_commutative() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20]]);
        let s = rel("BC", vec![vec![10, 5], vec![10, 6]]);
        for alg in ALGOS {
            assert_eq!(
                r.natural_join_with(&s, alg),
                s.natural_join_with(&r, alg),
                "{alg:?}"
            );
        }
    }

    #[test]
    fn join_is_associative() {
        let r = rel("AB", vec![vec![1, 10], vec![2, 20]]);
        let s = rel("BC", vec![vec![10, 5], vec![20, 6]]);
        let t = rel("CD", vec![vec![5, 7], vec![6, 8]]);
        let left_first = r.natural_join(&s).natural_join(&t);
        let right_first = r.natural_join(&s.natural_join(&t));
        assert_eq!(left_first, right_first);
    }

    #[test]
    fn algorithms_agree_on_paper_example_1() {
        // Example 1 of the paper: τ(R1 ⋈ R2) = 10.
        let r1 = rel("AB", vec![vec![100, 0], vec![101, 0], vec![102, 0], vec![103, 1]]);
        let r2 = rel("BC", vec![vec![0, 200], vec![0, 201], vec![0, 202], vec![1, 203]]);
        for alg in ALGOS {
            assert_eq!(r1.natural_join_with(&r2, alg).tau(), 10, "{alg:?}");
        }
    }

    #[test]
    fn sort_merge_handles_duplicate_key_runs() {
        // Regression for the precomputed-key rewrite: heavy duplicate keys
        // exercise the group-boundary scan, including groups that run to
        // the end of both sides.
        let r = rel("AB", (0..20).map(|i| vec![i, 0]).collect());
        let s = rel("BC", (0..15).map(|i| vec![0, i]).collect());
        let hash = r.natural_join_with(&s, JoinAlgorithm::Hash);
        let sm = r.natural_join_with(&s, JoinAlgorithm::SortMerge);
        assert_eq!(hash, sm);
        assert_eq!(sm.tau(), 300);
    }

    #[test]
    fn partitioned_join_matches_sequential_at_every_thread_count() {
        let r = rel(
            "AB",
            (0..40).map(|i| vec![i, i % 7]).collect(),
        );
        let s = rel(
            "BC",
            (0..30).map(|i| vec![i % 7, 100 + i]).collect(),
        );
        let sequential = r.natural_join(&s);
        for threads in 1..=4 {
            let guard = Guard::unlimited();
            let par = r.natural_join_partitioned(&s, threads, &guard).unwrap();
            assert_eq!(par, sequential, "threads={threads}");
        }
    }

    #[test]
    fn partitioned_join_charges_the_same_tuple_total() {
        let r = rel("AB", (0..40).map(|i| vec![i, i % 7]).collect());
        let s = rel("BC", (0..30).map(|i| vec![i % 7, 100 + i]).collect());
        let charged = |threads: usize| -> u64 {
            let guard = Guard::new(mjoin_guard::Budget::unlimited().with_max_tuples(1_000_000));
            r.natural_join_partitioned(&s, threads, &guard).unwrap();
            guard.tuples_used()
        };
        let seq = charged(1);
        assert!(seq > 0);
        for threads in 2..=4 {
            assert_eq!(charged(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn partitioned_join_respects_tuple_budget() {
        let r = rel("AB", (0..50).map(|i| vec![i, 0]).collect());
        let s = rel("BC", (0..50).map(|i| vec![0, i]).collect());
        let guard = Guard::new(mjoin_guard::Budget::unlimited().with_max_tuples(100));
        let err = r.natural_join_partitioned(&s, 4, &guard).unwrap_err();
        assert!(matches!(err, MjoinError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn partitioned_cartesian_product_is_correct() {
        // Disjoint schemes: the key is empty, every tuple lands in one
        // partition, and the join must still equal the Cartesian product.
        let r = rel("AB", vec![vec![1, 2], vec![3, 4]]);
        let s = rel("CD", vec![vec![5, 6], vec![7, 8], vec![9, 10]]);
        let guard = Guard::unlimited();
        let par = r.natural_join_partitioned(&s, 4, &guard).unwrap();
        assert_eq!(par, r.natural_join(&s));
        assert_eq!(par.tau(), 6);
    }

    #[test]
    fn column_ordering_is_attribute_ascending_regardless_of_sides() {
        // Join CD ⋈ AC: output scheme ACD in ascending attribute order.
        let mut cat = Catalog::with_letters();
        let cd = cat.scheme("CD").unwrap();
        let ac = cat.scheme("AC").unwrap();
        let r = Relation::from_int_rows(cd, vec![vec![1, 2]]).unwrap();
        let s = Relation::from_int_rows(ac, vec![vec![9, 1]]).unwrap();
        let j = r.natural_join(&s);
        let names: Vec<&str> = j.attrs().iter().map(|&a| cat.name(a).unwrap()).collect();
        assert_eq!(names, vec!["A", "C", "D"]);
        assert_eq!(
            j.tuples()[0].values(),
            &[Value::Int(9), Value::Int(1), Value::Int(2)]
        );
    }
}
