//! A minimal, self-contained relational engine.
//!
//! This crate implements exactly the formal machinery of Section 2 of
//! Tay, *On the Optimality of Strategies for Multiple Joins* (PODS 1990 /
//! JACM 1993): attributes, relation schemes, tuples, relation states, and
//! the natural join — plus the auxiliary operators (projection, selection,
//! semijoin, set operations) that the paper's Sections 4–5 rely on.
//!
//! # Design
//!
//! * **Attributes** are interned: an [`Attribute`] is a small integer index
//!   into a [`Catalog`], and a relation scheme is an [`AttrSet`] — a
//!   fixed-width bitset supporting up to [`MAX_ATTRS`] attributes. All
//!   scheme-level reasoning (linked / disjoint / connected, Section 2 of the
//!   paper) reduces to word-parallel bit operations.
//! * **Relation states are sets.** A [`Relation`] stores its tuples sorted
//!   and deduplicated, so equality, hashing and iteration order are
//!   deterministic — important both for reproducible experiments and for the
//!   paper's cost measure τ (the *number of tuples*, [`Relation::tau`]).
//! * **Joins** come in three interchangeable implementations
//!   ([`JoinAlgorithm`]): hash join (default), sort-merge join and
//!   nested-loop join. All three produce identical canonical relations; the
//!   benches in `mjoin-bench` ablate them against each other.
//!
//! # Quickstart
//!
//! ```
//! use mjoin_relation::{Catalog, Relation, Value};
//!
//! let mut cat = Catalog::new();
//! let ab = cat.scheme("AB").unwrap();
//! let bc = cat.scheme("BC").unwrap();
//!
//! let r = Relation::from_rows(ab, vec![
//!     vec![Value::from(1), Value::from(10)],
//!     vec![Value::from(2), Value::from(20)],
//! ]).unwrap();
//! let s = Relation::from_rows(bc, vec![
//!     vec![Value::from(10), Value::from(100)],
//!     vec![Value::from(30), Value::from(300)],
//! ]).unwrap();
//!
//! let joined = r.natural_join(&s);
//! assert_eq!(joined.tau(), 1); // only B = 10 matches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod error;
mod join;
mod ops;
mod relation;
mod value;

pub use attr::{AttrSet, AttrSetIter, Attribute, Catalog, MAX_ATTRS};
pub use error::RelationError;
pub use join::JoinAlgorithm;
pub use relation::{Relation, Tuple};
pub use value::Value;
