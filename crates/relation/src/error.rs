//! Error type for the relational engine.

use std::fmt;

/// Errors raised while constructing catalogs, schemes, or relations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelationError {
    /// The catalog already holds [`MAX_ATTRS`](crate::MAX_ATTRS) attributes.
    CatalogFull,
    /// A scheme specification parsed to the empty attribute set.
    ///
    /// The paper requires relation schemes to be nonempty subsets of the
    /// universe `U`.
    EmptyScheme,
    /// A comma-separated scheme specification contained an empty name.
    EmptyAttributeName,
    /// A row's width does not match its scheme's arity.
    ArityMismatch {
        /// Number of attributes in the scheme.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A projection target was not a subset of the relation's scheme.
    NotASubscheme,
    /// A database scheme held more relations than the bitset universe
    /// supports. Rejected at the construction boundary so release builds
    /// never silently wrap a `RelSet` shift.
    TooManyRelations {
        /// The cap (`mjoin_hypergraph::MAX_RELATIONS`).
        max: usize,
        /// How many relations the input supplied.
        got: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::CatalogFull => {
                write!(f, "attribute catalog is full ({} attributes)", crate::MAX_ATTRS)
            }
            RelationError::EmptyScheme => write!(f, "relation schemes must be nonempty"),
            RelationError::EmptyAttributeName => write!(f, "empty attribute name in scheme spec"),
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but scheme has {expected} attributes")
            }
            RelationError::NotASubscheme => {
                write!(f, "projection target is not a subset of the relation scheme")
            }
            RelationError::TooManyRelations { max, got } => {
                write!(f, "database schemes are limited to {max} relations, got {got}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        assert!(!RelationError::CatalogFull.to_string().is_empty());
        assert!(!RelationError::EmptyScheme.to_string().is_empty());
        assert!(!RelationError::EmptyAttributeName.to_string().is_empty());
        assert!(!RelationError::NotASubscheme.to_string().is_empty());
        let e = RelationError::TooManyRelations { max: 64, got: 65 };
        assert!(e.to_string().contains("64") && e.to_string().contains("65"));
    }
}
