//! Attribute values.

use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// The paper leaves domains abstract; two concrete domains cover every
/// example and experiment: integers and (cheaply clonable) strings. Values
/// are totally ordered across variants (all integers before all strings) so
/// relations can keep their tuples in a canonical sort order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value. `Arc<str>` keeps tuple cloning cheap during joins.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::str("hi").as_int(), None);
    }

    #[test]
    fn total_order_across_variants() {
        let mut vs = vec![Value::str("b"), Value::Int(2), Value::str("a"), Value::Int(1)];
        vs.sort();
        assert_eq!(
            vs,
            vec![Value::Int(1), Value::Int(2), Value::str("a"), Value::str("b")]
        );
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("q").to_string(), "q");
        assert_eq!(format!("{:?}", Value::str("q")), "\"q\"");
        assert_eq!(format!("{:?}", Value::Int(5)), "5");
    }
}
