//! Thread-count invariance of the parallel plan searches.
//!
//! The multi-core DPs and the parallel exhaustive enumeration promise
//! bit-identical plans and costs at any thread count. These tests hold
//! them to it over randomized schemes and states — and check that a
//! tripping budget produces the *same typed error* no matter how many
//! workers were running when it tripped.

use mjoin::{
    try_best_no_cartesian_parallel, try_best_strategy_parallel, Budget, Database, DpAlgorithm,
    Guard, NoisyOracle, SharedOracle, Strategy, SyntheticOracle,
};
use mjoin_gen::{data, schemes};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected database with `n` relations, deterministic in `seed`.
fn random_db(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let extra = rng.gen_range(0..=2);
    let (cat, scheme) = schemes::random_connected(n, extra, &mut rng);
    data::uniform(cat, scheme, &data::DataConfig::default(), &mut rng)
}

#[test]
fn parallel_dps_are_thread_count_invariant() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
        let n = rng.gen_range(4..=8);
        let db = random_db(n, seed);
        let subset = db.scheme().full_set();
        for algorithm in [DpAlgorithm::DpSize, DpAlgorithm::DpCcp] {
            let run = |threads: usize| {
                let oracle = SharedOracle::new(&db);
                try_best_no_cartesian_parallel(
                    &oracle,
                    subset,
                    algorithm,
                    &Guard::unlimited(),
                    threads,
                )
                .unwrap()
            };
            let base = run(1);
            for threads in [2, 4] {
                let got = run(threads);
                match (&base, &got) {
                    (None, None) => {}
                    (Some(b), Some(g)) => {
                        assert_eq!(g.cost, b.cost, "seed {seed} {algorithm:?} x{threads}");
                        assert_eq!(
                            g.strategy, b.strategy,
                            "seed {seed} {algorithm:?} x{threads}"
                        );
                    }
                    _ => panic!("seed {seed} {algorithm:?} x{threads}: Some/None mismatch"),
                }
            }
        }
    }
}

#[test]
fn parallel_exhaustive_is_thread_count_invariant() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE7);
        let n = rng.gen_range(4..=6);
        let db = random_db(n, seed.wrapping_add(100));
        let subset = db.scheme().full_set();
        let scheme = db.scheme().clone();
        type Accept = Box<dyn Fn(&Strategy) -> bool + Sync>;
        let filters: [(&str, Accept); 3] = [
            ("all", Box::new(|_: &Strategy| true)),
            ("linear", Box::new(|s: &Strategy| s.is_linear())),
            (
                "product-free",
                Box::new(move |s: &Strategy| !s.uses_cartesian(&scheme)),
            ),
        ];
        for (name, accept) in &filters {
            let run = |threads: usize| {
                let oracle = SharedOracle::new(&db);
                try_best_strategy_parallel(
                    &oracle,
                    subset,
                    &Guard::unlimited(),
                    threads,
                    accept.as_ref(),
                )
                .unwrap()
            };
            let base = run(1);
            for threads in [2, 4] {
                let got = run(threads);
                assert_eq!(got, base, "seed {seed} filter {name} x{threads}");
            }
        }
    }
}

#[test]
fn exhaustive_and_dp_agree_on_the_product_free_optimum() {
    // Cross-check the two parallel searches against each other: the
    // cheapest product-free strategy found by enumeration must cost exactly
    // what the product-free DP reports.
    for seed in 0..3u64 {
        let db = random_db(5, seed.wrapping_add(40));
        let subset = db.scheme().full_set();
        let scheme = db.scheme().clone();
        let oracle = SharedOracle::new(&db);
        let dp = try_best_no_cartesian_parallel(
            &oracle,
            subset,
            DpAlgorithm::DpCcp,
            &Guard::unlimited(),
            4,
        )
        .unwrap();
        let exhaustive = try_best_strategy_parallel(
            &oracle,
            subset,
            &Guard::unlimited(),
            4,
            &|s: &Strategy| !s.uses_cartesian(&scheme),
        )
        .unwrap();
        match (dp, exhaustive) {
            (Some(p), Some((_, c))) => assert_eq!(p.cost, c, "seed {seed}"),
            (None, None) => {}
            _ => panic!("seed {seed}: DP and enumeration disagree on emptiness"),
        }
    }
}

#[test]
fn noisy_estimates_keep_the_parallel_dp_thread_count_invariant() {
    // The seeded noise is a pure function of (seed, subset), so a noisy
    // oracle is exactly as thread-count invariant as a noiseless one:
    // plans searched under injected estimation error must still be
    // bit-identical at 1, 2, and 4 threads.
    for seed in 0..4u64 {
        let db = random_db(6, seed.wrapping_add(200));
        let subset = db.scheme().full_set();
        for q in [2.0, 16.0] {
            let oracle = NoisyOracle::try_new(SyntheticOracle::from_database(&db), q, seed)
                .expect("valid envelope");
            let run = |threads: usize| {
                try_best_no_cartesian_parallel(
                    &oracle,
                    subset,
                    DpAlgorithm::DpCcp,
                    &Guard::unlimited(),
                    threads,
                )
                .unwrap()
            };
            let base = run(1);
            for threads in [2, 4] {
                let got = run(threads);
                match (&base, &got) {
                    (None, None) => {}
                    (Some(b), Some(g)) => {
                        assert_eq!(g.cost, b.cost, "seed {seed} q {q} x{threads}");
                        assert_eq!(g.strategy, b.strategy, "seed {seed} q {q} x{threads}");
                    }
                    _ => panic!("seed {seed} q {q} x{threads}: Some/None mismatch"),
                }
            }
        }
    }
}

#[test]
fn tripping_budgets_error_identically_at_every_thread_count() {
    let db = random_db(6, 7);
    let subset = db.scheme().full_set();
    // A memo cap the exact oracle must blow through while materializing.
    let budget = Budget::unlimited().with_max_memo_entries(2);

    let dp_err = |threads: usize| {
        let guard = Guard::new(budget);
        let oracle = SharedOracle::with_guard(&db, guard.clone());
        try_best_no_cartesian_parallel(&oracle, subset, DpAlgorithm::DpCcp, &guard, threads)
            .unwrap_err()
    };
    let base = dp_err(1);
    for threads in [2, 4] {
        assert_eq!(dp_err(threads), base, "DP error at {threads} threads");
    }

    let enum_err = |threads: usize| {
        let guard = Guard::new(budget);
        let oracle = SharedOracle::with_guard(&db, guard.clone());
        try_best_strategy_parallel(&oracle, subset, &guard, threads, &|_: &Strategy| true)
            .unwrap_err()
    };
    let base = enum_err(1);
    for threads in [2, 4] {
        assert_eq!(enum_err(threads), base, "enumeration error at {threads} threads");
    }
}

#[test]
fn shared_oracle_distinct_subset_count_is_thread_invariant() {
    // The shared oracle charges each distinct subset exactly once, under
    // its shard's write lock — so while racing workers may *compute* a
    // subset twice (`oracle.shared_duplicate_materializations`), the
    // distinct-subset counter must not move with the thread count.
    use mjoin_obs::{Counter, Recorder};
    for seed in 0..4u64 {
        let db = random_db(6, seed.wrapping_add(300));
        let subset = db.scheme().full_set();
        let count = |threads: usize| {
            let rec = Recorder::arm();
            let oracle = SharedOracle::new(&db);
            try_best_no_cartesian_parallel(
                &oracle,
                subset,
                DpAlgorithm::DpCcp,
                &Guard::unlimited(),
                threads,
            )
            .unwrap();
            rec.snapshot().counter(Counter::OracleSharedDistinctSubsets)
        };
        let base = count(1);
        assert!(base > 0, "seed {seed}: the DP must materialize subsets");
        for threads in [2, 4] {
            assert_eq!(
                count(threads),
                base,
                "seed {seed}: distinct-subset count moved at {threads} threads"
            );
        }
    }
}

#[test]
fn adaptive_replan_count_is_thread_invariant() {
    // Replans trigger on q-errors, which depend only on (seed, subset) —
    // never on how many workers materialized the stages. Both the trace
    // and the `adaptive.replans` counter must agree at 1, 2, and 4 threads.
    use mjoin_adaptive::{plan_and_execute, AdaptiveConfig, Estimation};
    use mjoin_obs::{Counter, Recorder};
    for seed in 0..3u64 {
        let db = random_db(6, seed.wrapping_add(400));
        let estimation = Estimation::Noisy { q: 16.0, seed };
        let run = |threads: usize| {
            let rec = Recorder::arm();
            let config = AdaptiveConfig {
                threads,
                replan_threshold: 1.5,
                ..AdaptiveConfig::default()
            };
            let (_, outcome) = plan_and_execute(&db, &estimation, &config).unwrap();
            (
                outcome.trace.replans.len(),
                rec.snapshot().counter(Counter::AdaptiveReplans),
                outcome.result.tau(),
                outcome.trace.executed_tau,
            )
        };
        let base = run(1);
        assert_eq!(
            base.0 as u64, base.1,
            "seed {seed}: trace and counter disagree on replans"
        );
        for threads in [2, 4] {
            assert_eq!(run(threads), base, "seed {seed} at {threads} threads");
        }
    }
}
