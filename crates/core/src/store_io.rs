//! Glue between the optimizer stack and the persistent store.
//!
//! `mjoin-store` deliberately knows nothing above `mjoin-guard`/`mjoin-obs`
//! — its entries are flat integers and text. This module is where those
//! flats meet the typed world: canonical optimize fingerprints (shared by
//! the CLI warm-start and the serve plan cache, so a store written by one
//! warms the other), `Strategy` ⇄ step-triple conversion, and
//! `DpMemoExport` ⇄ entry-section conversion.

use std::fmt::Write as _;
use std::path::Path;

use mjoin_cost::Database;
use mjoin_guard::MjoinError;
use mjoin_hypergraph::{RelSet, MAX_RELATIONS};
use mjoin_optimizer::DpMemoExport;
use mjoin_store::{fingerprint128, EntryView, LoadedStore, StoreEntry};
use mjoin_strategy::Strategy;

/// The canonical fingerprint of one `optimize` request: the parsed schemes
/// and relation states (canonical row order), the search space *as
/// requested* (`None` = the default), and every budget knob — everything
/// that can change an `optimize` answer. This is the store key and the
/// serve plan-cache key; the two agreeing is what makes a store written by
/// a CLI cold run warm the daemon and vice versa.
pub fn optimize_fingerprint(
    db: &Database,
    space: Option<&str>,
    timeout_ms: Option<u64>,
    max_memo_entries: Option<u64>,
    max_tuples: Option<u64>,
    threads: usize,
) -> String {
    let mut canon = String::new();
    let _ = write!(
        canon,
        "v1|optimize|space={space:?}|t={timeout_ms:?}|m={max_memo_entries:?}|tu={max_tuples:?}|threads={threads}",
    );
    for i in 0..db.len() {
        let _ = write!(canon, "|rel {};", db.catalog().render(db.scheme().scheme(i)));
        canon.push_str(&db.state(i).to_text(db.catalog()));
    }
    fingerprint128(&canon)
}

/// A strategy as the store's flat `(set, left, right)` triples, pre-order.
/// The store's format is 64-bit, so a strategy touching relations ≥ 64
/// cannot be persisted — a typed error, never a silent truncation (schemes
/// that wide go through the polynomial planners and skip the store).
pub fn plan_steps(strategy: &Strategy) -> Result<Vec<(u64, u64, u64)>, MjoinError> {
    strategy
        .steps()
        .iter()
        .map(|s| {
            match (s.set.to_u64(), s.left.to_u64(), s.right.to_u64()) {
                (Some(set), Some(l), Some(r)) => Ok((set, l, r)),
                _ => Err(MjoinError::Internal(
                    "persisting a plan requires all relations below index 64".into(),
                )),
            }
        })
        .collect()
}

/// Rebuilds a strategy from stored step triples. The child order of every
/// join is preserved exactly, so the rebuilt strategy is `==` to (and
/// renders identically to) the one that was saved. Structurally
/// inconsistent steps (missing set, overlap, cycle) are typed errors.
pub fn strategy_from_steps(
    within: RelSet,
    steps: &[(u64, u64, u64)],
) -> Result<Strategy, MjoinError> {
    fn build(
        set: RelSet,
        steps: &[(u64, u64, u64)],
        depth: usize,
    ) -> Result<Strategy, MjoinError> {
        if depth > MAX_RELATIONS {
            return Err(MjoinError::Internal("stored plan steps are cyclic".into()));
        }
        if set.is_singleton() {
            return Ok(Strategy::leaf(set.first().expect("singleton is nonempty")));
        }
        let Some(&(_, l, r)) = steps
            .iter()
            .find(|&&(s, _, _)| set.to_u64() == Some(s))
        else {
            return Err(MjoinError::Internal(format!(
                "stored plan has no step for subset {set:?}"
            )));
        };
        let (l, r) = (RelSet(u128::from(l)), RelSet(u128::from(r)));
        if l.union(r) != set || l.is_empty() || r.is_empty() {
            return Err(MjoinError::Internal(format!(
                "stored plan step for {set:?} does not partition it"
            )));
        }
        Strategy::join(build(l, steps, depth + 1)?, build(r, steps, depth + 1)?)
        .map_err(|e| MjoinError::Internal(format!("stored plan children overlap: {e}")))
    }
    build(within, steps, 0)
}

/// Assembles a store entry from a finished optimize run. `taus` is the
/// `(subset bits, τ)` harvest from the oracle memo; subsets the DP touched
/// but the memo no longer holds are stored as `u64::MAX` ("not cached").
pub fn entry_from_optimize(
    fingerprint: String,
    within: RelSet,
    plan: Option<(&Strategy, u64)>,
    memo: Option<&DpMemoExport>,
    taus: &[(u64, u64)],
    response: &str,
) -> Result<StoreEntry, MjoinError> {
    let Some(within64) = within.to_u64() else {
        return Err(MjoinError::Internal(
            "persisting an optimize run requires all relations below index 64".into(),
        ));
    };
    let (steps, plan_cost) = match plan {
        Some((strategy, cost)) => (plan_steps(strategy)?, cost),
        None => (Vec::new(), u64::MAX),
    };
    let (subsets, costs, splits) = match memo {
        Some(m) => (
            m.subsets.clone(),
            m.costs.clone(),
            m.splits
                .iter()
                .map(|s| s.unwrap_or(mjoin_store::NO_SPLIT))
                .collect(),
        ),
        None => (Vec::new(), Vec::new(), Vec::new()),
    };
    let cards = if subsets.is_empty() || taus.is_empty() {
        Vec::new()
    } else {
        subsets
            .iter()
            .map(|s| {
                taus.binary_search_by_key(s, |&(bits, _)| bits)
                    .map(|i| taus[i].1)
                    .unwrap_or(u64::MAX)
            })
            .collect()
    };
    Ok(StoreEntry {
        fingerprint,
        within: within64,
        plan_cost,
        subsets,
        costs,
        splits,
        cards,
        steps,
        response: response.to_string(),
    })
}

/// The memo half of a loaded entry, back in the optimizer's export form —
/// ready for [`mjoin_optimizer::plan_from_memo`].
pub fn memo_from_entry(e: &EntryView<'_>) -> DpMemoExport {
    DpMemoExport {
        subsets: (0..e.n_subsets()).map(|r| e.subset(r)).collect(),
        costs: (0..e.n_subsets()).map(|r| e.cost(r)).collect(),
        splits: (0..e.n_subsets()).map(|r| e.split(r)).collect(),
    }
}

/// Inserts (or replaces, by fingerprint) one entry in the store at `path`
/// and writes it back. A missing file starts a fresh store; an existing
/// file that fails validation is a typed error, never silently clobbered.
pub fn save_optimize_entry(path: &Path, entry: StoreEntry) -> Result<u64, MjoinError> {
    let mut entries: Vec<StoreEntry> = if path.exists() {
        LoadedStore::open(path)?.entries().map(|e| e.to_entry()).collect()
    } else {
        Vec::new()
    };
    match entries.iter_mut().find(|e| e.fingerprint == entry.fingerprint) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
    mjoin_store::save(path, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{CardinalityOracle, ExactOracle};
    use mjoin_guard::Guard;
    use mjoin_optimizer::{plan_from_memo, try_best_no_cartesian_ccp_with_memo};

    fn chain_db() -> Database {
        Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 7], vec![6, 8]]),
        ])
        .unwrap()
    }

    #[test]
    fn steps_round_trip_preserving_child_order() {
        let db = chain_db();
        let mut oracle = ExactOracle::new(&db);
        let full = db.scheme().full_set();
        let (plan, _) =
            try_best_no_cartesian_ccp_with_memo(&mut oracle, full, &Guard::unlimited())
                .unwrap()
                .unwrap();
        let steps = plan_steps(&plan.strategy).unwrap();
        let rebuilt = strategy_from_steps(full, &steps).unwrap();
        assert_eq!(rebuilt, plan.strategy);
        assert_eq!(
            rebuilt.render(db.catalog(), db.scheme()),
            plan.strategy.render(db.catalog(), db.scheme())
        );
    }

    #[test]
    fn memo_and_cards_survive_an_entry_round_trip() {
        let db = chain_db();
        let mut oracle = ExactOracle::new(&db);
        let full = db.scheme().full_set();
        let (plan, memo) =
            try_best_no_cartesian_ccp_with_memo(&mut oracle, full, &Guard::unlimited())
                .unwrap()
                .unwrap();
        let taus = oracle.memo_taus();
        let entry = entry_from_optimize(
            fingerprint128("test"),
            full,
            Some((&plan.strategy, plan.cost)),
            Some(&memo),
            &taus,
            "rendered\n",
        )
        .unwrap();
        let bytes = mjoin_store::serialize(std::slice::from_ref(&entry)).unwrap();
        let store = LoadedStore::from_bytes(bytes).unwrap();
        let view = store.entry_at(0);
        assert_eq!(view.to_entry(), entry);
        let back = memo_from_entry(&view);
        assert_eq!(back, memo);
        // The memo alone rebuilds the winning plan at the winning cost.
        let warm = plan_from_memo(&back, full).unwrap().unwrap();
        assert_eq!(warm.cost, plan.cost);
        assert_eq!(warm.strategy, plan.strategy);
        // Every memoized subset's τ was found in the harvest.
        for r in 0..view.n_subsets() {
            let tau = view.card(r).unwrap();
            if tau != u64::MAX {
                assert_eq!(tau, oracle.try_tau(RelSet(u128::from(view.subset(r)))).unwrap());
            }
        }
    }

    #[test]
    fn fingerprints_separate_every_knob() {
        let db = chain_db();
        let base = optimize_fingerprint(&db, None, None, None, None, 1);
        assert_ne!(base, optimize_fingerprint(&db, Some("nocp"), None, None, None, 1));
        assert_ne!(base, optimize_fingerprint(&db, None, Some(5), None, None, 1));
        assert_ne!(base, optimize_fingerprint(&db, None, None, None, None, 2));
        assert_eq!(base, optimize_fingerprint(&db, None, None, None, None, 1));
    }

    #[test]
    fn save_merges_by_fingerprint() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mjoin-storeio-{}.store", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let a = StoreEntry::response_only(fingerprint128("a"), 1, "one\n".into());
        let b = StoreEntry::response_only(fingerprint128("b"), 2, "two\n".into());
        save_optimize_entry(&path, a.clone()).unwrap();
        save_optimize_entry(&path, b.clone()).unwrap();
        let a2 = StoreEntry::response_only(fingerprint128("a"), 3, "one v2\n".into());
        save_optimize_entry(&path, a2.clone()).unwrap();
        let store = LoadedStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.entry(&a.fingerprint).unwrap().to_entry(), a2);
        assert_eq!(store.entry(&b.fingerprint).unwrap().to_entry(), b);
        let _ = std::fs::remove_file(&path);
    }
}
