//! Typed workspace results → stable [`RunReport`] sections.
//!
//! The `mjoin-obs` crate deliberately depends on nothing, so it cannot
//! name workspace types like [`DegradationReport`]. This module is the
//! bridge: it renders the robust ladder's report as a [`Json`] section
//! for embedding in a run report, and owns the single guarded emission
//! point ([`render_run_report`]) every JSON producer funnels through —
//! the `obs::report` failpoint fires there, proving report emission
//! propagates typed failures like every other layer.

use mjoin_guard::{failpoints, MjoinError};
use mjoin_obs::{Json, RunReport};

use crate::robust::{DegradationReport, RungStats};

/// The ladder's report as a JSON section (`"degradation"` by convention).
///
/// `elapsed_ns` fields are wall-clock timings and carry no determinism
/// guarantee; everything else (rung names, outcomes, budget consumption)
/// is deterministic for a fixed input at a fixed thread count.
pub fn degradation_section(report: &DegradationReport) -> Json {
    let attempts = report
        .attempts
        .iter()
        .map(|a| {
            let mut members = vec![
                ("rung", Json::Str(a.rung.to_string())),
                ("outcome", Json::Str(a.outcome.clone())),
            ];
            members.extend(stats_members(&a.stats));
            Json::obj(members)
        })
        .collect();
    let mut members = vec![
        ("answered_by", Json::Str(report.answered_by.to_string())),
        ("optimal", Json::Bool(report.optimal)),
        ("space_relaxed", Json::Bool(report.space_relaxed)),
    ];
    members.extend(stats_members(&report.answered_stats));
    members.push(("attempts", Json::Arr(attempts)));
    Json::obj(members)
}

fn stats_members(stats: &RungStats) -> Vec<(&'static str, Json)> {
    vec![
        ("elapsed_ns", Json::U64(stats.elapsed.as_nanos() as u64)),
        ("memo_used", Json::U64(stats.memo_used)),
        ("tuples_used", Json::U64(stats.tuples_used)),
    ]
}

/// Renders a run report to its on-disk JSON string, through the
/// `obs::report` failpoint. Every `--metrics-json` file and every
/// `BENCH_*.json` file is produced by this function, so arming that
/// site proves the emission path degrades gracefully instead of
/// panicking or writing a torn file.
pub fn render_run_report(report: &RunReport) -> Result<String, MjoinError> {
    failpoints::hit("obs::report")?;
    Ok(report.to_json_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::Database;
    use mjoin_guard::failpoints::ScopedFailpoint;
    use mjoin_obs::Recorder;

    fn chain3() -> Database {
        Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 7], vec![6, 8]]),
        ])
        .unwrap()
    }

    #[test]
    fn degradation_section_round_trips() {
        let db = chain3();
        let robust = crate::optimize_robust(
            &db,
            db.scheme().full_set(),
            crate::SearchSpace::All,
            mjoin_guard::Budget::unlimited(),
            None,
        )
        .unwrap();
        let section = degradation_section(&robust.report);
        let text = section.to_compact_string();
        let doc = mjoin_obs::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("answered_by").and_then(Json::as_str),
            Some(robust.report.answered_by.to_string().as_str())
        );
        assert!(doc.get("attempts").is_some());
    }

    #[test]
    fn render_respects_the_report_failpoint() {
        let rec = Recorder::arm();
        let report = RunReport::new("test", 1, rec.snapshot());
        drop(rec);
        assert!(render_run_report(&report).is_ok());
        let _fp = ScopedFailpoint::arm("obs::report");
        let err = render_run_report(&report).unwrap_err();
        assert!(err.to_string().contains("obs::report"));
    }
}
