//! Executable verifiers for the paper's Lemmas 4–5 and Theorems 1–3.
//!
//! For a concrete database each verifier checks *both* sides of the
//! theorem: do the preconditions hold, and does the conclusion hold? The
//! theorems assert `preconditions ⇒ conclusion`; the experiments confirm
//! the implication across thousands of generated databases, and the
//! paper's Examples 3–5 show each precondition is necessary (the
//! conclusion fails without it).

use mjoin_cost::CardinalityOracle;
use mjoin_optimizer::{optimize, SearchSpace};
use mjoin_strategy::{count_all_strategies, enumerate_linear};

use crate::conditions::{satisfies, Condition};

/// The outcome of checking one theorem on one database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TheoremReport {
    /// Do the theorem's hypotheses hold (connectedness, `R_D ≠ φ`, and the
    /// relevant condition)?
    pub preconditions_hold: bool,
    /// Does the conclusion hold for this database?
    pub conclusion_holds: bool,
    /// The conclusion held vacuously (e.g. no linear strategy is globally
    /// τ-optimum, for Theorem 1).
    pub vacuous: bool,
}

impl TheoremReport {
    /// The implication the theorem asserts: preconditions ⇒ conclusion.
    pub fn implication_holds(&self) -> bool {
        !self.preconditions_hold || self.conclusion_holds
    }
}

fn common_preconditions<O: CardinalityOracle>(oracle: &mut O) -> bool {
    let full = oracle.scheme().full_set();
    oracle.scheme().connected(full) && !oracle.result_is_empty()
}

/// **Theorem 1.** If `𝐃` is connected, `R_D ≠ φ` and `C1'` holds, then a
/// linear strategy that is (globally) τ-optimum does not use Cartesian
/// products.
///
/// The conclusion is checked by enumerating every linear strategy whose
/// cost equals the global optimum (found by DP) and testing each for
/// product use; `n!` enumeration limits this to small schemes (`n ≤ 8`).
pub fn theorem1<O: CardinalityOracle>(oracle: &mut O) -> TheoremReport {
    let preconditions_hold =
        common_preconditions(oracle) && satisfies(oracle, Condition::C1Strict);
    let full = oracle.scheme().full_set();
    assert!(full.len() <= 8, "theorem1 verification enumerates n! linear strategies");
    let optimum = optimize(oracle, full, SearchSpace::All)
        .expect("the full space is never empty")
        .cost;
    let mut vacuous = true;
    let mut conclusion_holds = true;
    for s in enumerate_linear(full) {
        if s.cost(oracle) == optimum {
            vacuous = false;
            if s.uses_cartesian(oracle.scheme()) {
                conclusion_holds = false;
                break;
            }
        }
    }
    TheoremReport {
        preconditions_hold,
        conclusion_holds,
        vacuous,
    }
}

/// **Theorem 2.** If `𝐃` is connected, `R_D ≠ φ` and `C1 ∧ C2` hold, then
/// some τ-optimum strategy uses no Cartesian products.
///
/// Checked by comparing the DP optimum over the full space with the DP
/// optimum over the product-free space.
pub fn theorem2<O: CardinalityOracle>(oracle: &mut O) -> TheoremReport {
    let preconditions_hold = common_preconditions(oracle)
        && satisfies(oracle, Condition::C1)
        && satisfies(oracle, Condition::C2);
    let full = oracle.scheme().full_set();
    let optimum = optimize(oracle, full, SearchSpace::All)
        .expect("the full space is never empty")
        .cost;
    let conclusion_holds = match optimize(oracle, full, SearchSpace::NoCartesian) {
        Some(plan) => plan.cost == optimum,
        None => false, // unconnected scheme: no product-free strategy exists
    };
    TheoremReport {
        preconditions_hold,
        conclusion_holds,
        vacuous: false,
    }
}

/// **Theorem 3.** If `𝐃` is connected, `R_D ≠ φ` and `C3` holds, then some
/// τ-optimum strategy is linear *and* uses no Cartesian products.
pub fn theorem3<O: CardinalityOracle>(oracle: &mut O) -> TheoremReport {
    let preconditions_hold =
        common_preconditions(oracle) && satisfies(oracle, Condition::C3);
    let full = oracle.scheme().full_set();
    let optimum = optimize(oracle, full, SearchSpace::All)
        .expect("the full space is never empty")
        .cost;
    let conclusion_holds = match optimize(oracle, full, SearchSpace::LinearNoCartesian) {
        Some(plan) => plan.cost == optimum,
        None => false,
    };
    TheoremReport {
        preconditions_hold,
        conclusion_holds,
        vacuous: false,
    }
}

/// **Lemma 4** (conclusion): some τ-optimum strategy evaluates the
/// database's components individually. Checked by comparing the global DP
/// optimum with the best strategy constrained to evaluate components
/// individually (per-component optima plus the cheapest product
/// combination).
pub fn lemma4_conclusion<O: CardinalityOracle>(oracle: &mut O) -> bool {
    let full = oracle.scheme().full_set();
    let optimum = optimize(oracle, full, SearchSpace::All)
        .expect("the full space is never empty")
        .cost;
    // Best strategy evaluating components individually: solve each
    // component in the *full* space, then combine with the product DP used
    // by AvoidCartesian — except components may internally use products
    // here, so combine manually.
    let comps = oracle.scheme().components(full);
    if comps.len() == 1 {
        return true; // trivially: every strategy evaluates the one component
    }
    // Per-component optima.
    let mut per_comp_cost = 0u64;
    for &c in &comps {
        per_comp_cost = per_comp_cost.saturating_add(
            optimize(oracle, c, SearchSpace::All)
                .expect("the full space is never empty")
                .cost,
        );
    }
    // Cheapest way to multiply the component results: DP over component
    // subsets with multiplicative sizes (identical to the AvoidCartesian
    // combination step).
    let sizes: Vec<u64> = comps.iter().map(|&c| oracle.tau(c)).collect();
    let k = comps.len();
    let mut memo = std::collections::HashMap::<u64, u64>::new();
    fn combo(mask: u64, sizes: &[u64], memo: &mut std::collections::HashMap<u64, u64>) -> u64 {
        if mask.count_ones() <= 1 {
            return 0;
        }
        if let Some(&c) = memo.get(&mask) {
            return c;
        }
        let own: u64 = (0..sizes.len())
            .filter(|&i| mask & (1 << i) != 0)
            .fold(1u64, |acc, i| acc.saturating_mul(sizes[i]));
        let lowest = mask & mask.wrapping_neg();
        let mut best = u64::MAX;
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & lowest != 0 && sub != mask {
                let c = combo(sub, sizes, memo)
                    .saturating_add(combo(mask & !sub, sizes, memo));
                best = best.min(c);
            }
            sub = (sub - 1) & mask;
        }
        let total = own.saturating_add(best);
        memo.insert(mask, total);
        total
    }
    let combo_cost = combo((1u64 << k) - 1, &sizes, &mut memo);
    per_comp_cost.saturating_add(combo_cost) == optimum
}

/// **Lemma 5**: `C3 ⇒ C1` whenever `R_D ≠ φ`. Returns `true` when the
/// implication is confirmed on this database (vacuously if `C3` fails).
pub fn lemma5_check<O: CardinalityOracle>(oracle: &mut O) -> bool {
    if oracle.result_is_empty() || !satisfies(oracle, Condition::C3) {
        return true;
    }
    satisfies(oracle, Condition::C1)
}

/// **Lemma 1**: if `C1` holds and `R_D ≠ φ`, the `C1` inequality extends
/// to *arbitrary* (possibly unconnected) `E` and `E₂` — only `E₁` needs
/// connectivity. Returns `true` when the implication is confirmed
/// (vacuously if the hypotheses fail). `Lemma 1'` is the same statement
/// with strict inequalities, checked when `C1'` holds.
///
/// Exponential in `|D|` (it quantifies over arbitrary subset triples);
/// intended for `n ≲ 6`.
pub fn lemma1_check<O: CardinalityOracle>(oracle: &mut O) -> bool {
    if oracle.result_is_empty() {
        return true;
    }
    let c1 = satisfies(oracle, Condition::C1);
    let c1_strict = satisfies(oracle, Condition::C1Strict);
    if !c1 {
        return true; // hypothesis fails: vacuous
    }
    let full = oracle.scheme().full_set();
    let all: Vec<_> = full
        .subsets()
        .filter(|s| !s.is_empty())
        .collect();
    let connected: Vec<_> = oracle.scheme().connected_subsets(full);
    for &e in &all {
        for &e1 in &connected {
            if !e.is_disjoint(e1) || !oracle.scheme().linked(e, e1) {
                continue;
            }
            let linked_cost = oracle.tau_join(e, e1);
            for &e2 in &all {
                if !e.is_disjoint(e2) || !e1.is_disjoint(e2) || oracle.scheme().linked(e, e2)
                {
                    continue;
                }
                let product_cost = oracle.tau_join(e, e2);
                if linked_cost > product_cost {
                    return false; // Lemma 1 violated
                }
                if c1_strict && linked_cost >= product_cost {
                    return false; // Lemma 1' violated
                }
            }
        }
    }
    true
}

/// **Lemma 6** (conclusion): for a connected database satisfying `C3`,
/// some *linear* product-free strategy is τ-optimum **among product-free
/// strategies**. Checked by comparing the two DP optima. Returns `true`
/// vacuously when the hypotheses fail.
pub fn lemma6_check<O: CardinalityOracle>(oracle: &mut O) -> bool {
    let full = oracle.scheme().full_set();
    if !oracle.scheme().connected(full) || !satisfies(oracle, Condition::C3) {
        return true;
    }
    let Some(nocp) = optimize(oracle, full, SearchSpace::NoCartesian) else {
        return true;
    };
    match optimize(oracle, full, SearchSpace::LinearNoCartesian) {
        Some(lin) => lin.cost == nocp.cost,
        None => false,
    }
}

/// Upper bound used by the verification experiments: enumerating all
/// strategies for `n` relations costs `(2n−3)!!` — callers should keep
/// `n ≤ 8` for enumeration-based checks.
pub fn enumeration_budget(n: usize) -> u64 {
    count_all_strategies(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{Database, ExactOracle};
    use mjoin_gen::data;

    #[test]
    fn theorem1_on_example3_shows_necessity_of_c1_strict() {
        // Example 3: C1 holds but C1' fails, and a linear τ-optimum DOES
        // use a Cartesian product — so Theorem 1's conclusion fails but the
        // implication is intact (preconditions are false).
        let db = data::paper_example3();
        let mut o = ExactOracle::new(&db);
        let r = theorem1(&mut o);
        assert!(!r.preconditions_hold, "C1' fails on Example 3");
        assert!(!r.conclusion_holds, "a CP-using linear optimum exists");
        assert!(r.implication_holds());
    }

    #[test]
    fn theorem1_holds_on_strict_database() {
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 0], vec![6, 1], vec![7, 2], vec![8, 3]]),
        ])
        .unwrap();
        let mut o = ExactOracle::new(&db);
        let r = theorem1(&mut o);
        assert!(r.preconditions_hold);
        assert!(r.conclusion_holds);
    }

    #[test]
    fn theorem2_on_example4_shows_necessity_of_c1() {
        // Example 4: C2 holds, C1 fails; the unique τ-optimum uses a
        // Cartesian product, so the conclusion fails.
        let db = data::paper_example4();
        let mut o = ExactOracle::new(&db);
        let r = theorem2(&mut o);
        assert!(!r.preconditions_hold);
        assert!(!r.conclusion_holds);
        assert!(r.implication_holds());
        // And pin the paper's arithmetic: τ(S1)=14, τ(S2)=12, τ(S3)=11.
        use mjoin_strategy::Strategy;
        let s1 = Strategy::left_deep(&[0, 1, 2]);
        let s2 = Strategy::join(
            Strategy::leaf(0),
            Strategy::join(Strategy::leaf(1), Strategy::leaf(2)).unwrap(),
        )
        .unwrap();
        let s3 = Strategy::left_deep(&[0, 2, 1]);
        assert_eq!(s1.cost(&mut o), 14);
        assert_eq!(s2.cost(&mut o), 12);
        assert_eq!(s3.cost(&mut o), 11);
        assert!(s3.uses_cartesian(db.scheme()));
    }

    #[test]
    fn theorem3_on_example5_shows_necessity_of_c3() {
        // Example 5: C1 ∧ C2 hold, C3 fails; the unique τ-optimum
        // (MS ⋈ SC) ⋈ (CI ⋈ ID) is bushy.
        let db = data::paper_example5();
        let mut o = ExactOracle::new(&db);
        let r = theorem3(&mut o);
        assert!(!r.preconditions_hold, "C3 fails on Example 5");
        assert!(!r.conclusion_holds, "only a bushy strategy is optimal");
        // But Theorem 2's preconditions DO hold, and its conclusion too:
        let r2 = theorem2(&mut o);
        assert!(r2.preconditions_hold);
        assert!(r2.conclusion_holds);
        // The optimum is the paper's bushy strategy.
        use mjoin_strategy::Strategy;
        let bushy = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::left_deep(&[2, 3]),
        )
        .unwrap();
        let opt = optimize(&mut o, db.scheme().full_set(), SearchSpace::All).unwrap();
        assert_eq!(opt.cost, bushy.cost(&mut o));
        assert!(!bushy.uses_cartesian(db.scheme()));
    }

    #[test]
    fn theorem3_holds_on_superkey_database() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(33);
        for n in 2..6 {
            let (cat, d) = mjoin_gen::schemes::chain(n);
            let cfg = mjoin_gen::data::DataConfig {
                tuples_per_relation: 4,
                domain: 8,
                ensure_nonempty: true,
            };
            let (db, _) = data::superkey(cat, d, &cfg, &mut rng);
            let mut o = ExactOracle::new(&db);
            let r = theorem3(&mut o);
            assert!(r.preconditions_hold, "superkey joins give C3 (n={n})");
            assert!(r.conclusion_holds, "n={n}");
        }
    }

    #[test]
    fn lemma4_on_example1() {
        // Example 1 satisfies C1 but not C2 — yet Lemma 4's conclusion may
        // still be checked: here the τ-optimum S4 joins across components,
        // and indeed NO optimum evaluates components individually.
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        assert!(!lemma4_conclusion(&mut o));
    }

    #[test]
    fn lemma4_holds_with_c2() {
        // Two superkey-joined components: Lemma 4 applies.
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("XY", vec![vec![0, 0], vec![1, 1]]),
        ])
        .unwrap();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C1));
        assert!(satisfies(&mut o, Condition::C2));
        assert!(lemma4_conclusion(&mut o));
    }

    #[test]
    fn lemma5_on_examples() {
        for db in [
            data::paper_example1(),
            data::paper_example3(),
            data::paper_example5(),
        ] {
            let mut o = ExactOracle::new(&db);
            assert!(lemma5_check(&mut o));
        }
    }

    #[test]
    fn enumeration_budget_matches_counts() {
        assert_eq!(enumeration_budget(4), 15);
        assert_eq!(enumeration_budget(8), 135135);
    }

    #[test]
    fn lemma1_extends_c1_on_examples() {
        // Example 1 satisfies C1; Lemma 1 extends the inequality to
        // unconnected E/E2 — confirmed by exhaustive check.
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C1));
        assert!(lemma1_check(&mut o));
        // Example 3 satisfies C1 (not C1'): still confirmed.
        let db3 = data::paper_example3();
        let mut o3 = ExactOracle::new(&db3);
        assert!(lemma1_check(&mut o3));
        // Example 4 violates C1: vacuous.
        let db4 = data::paper_example4();
        let mut o4 = ExactOracle::new(&db4);
        assert!(lemma1_check(&mut o4));
    }

    #[test]
    fn lemma1_on_random_c1_databases() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(101);
        let mut confirmed = 0;
        for _ in 0..30 {
            let (cat, scheme) = mjoin_gen::schemes::random_connected(4, 1, &mut rng);
            let cfg = mjoin_gen::data::DataConfig {
                tuples_per_relation: 3,
                domain: 4,
                ensure_nonempty: true,
            };
            let db = mjoin_gen::data::uniform(cat, scheme, &cfg, &mut rng);
            let mut o = ExactOracle::new(&db);
            assert!(lemma1_check(&mut o));
            if !o.result_is_empty() && satisfies(&mut o, Condition::C1) {
                confirmed += 1;
            }
        }
        assert!(confirmed > 0, "the check must not be vacuous everywhere");
    }

    #[test]
    fn lemma6_on_superkey_databases() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(202);
        for n in 2..=5 {
            let (cat, scheme) = mjoin_gen::schemes::chain(n);
            let cfg = mjoin_gen::data::DataConfig {
                tuples_per_relation: 4,
                domain: 8,
                ensure_nonempty: true,
            };
            let (db, _) = data::superkey(cat, scheme, &cfg, &mut rng);
            let mut o = ExactOracle::new(&db);
            assert!(satisfies(&mut o, Condition::C3));
            assert!(lemma6_check(&mut o), "n={n}");
        }
        // Example 5 violates C3: vacuous.
        let db5 = data::paper_example5();
        let mut o5 = ExactOracle::new(&db5);
        assert!(lemma6_check(&mut o5));
    }
}
