//! Derived schemes: a partially-executed query as a fresh database.
//!
//! When the adaptive executor has already materialized some intermediates
//! and decides to re-plan, the remaining work is itself a multi-join query:
//! its "base relations" are the live intermediates plus the original
//! relations not yet consumed. This module builds that query as a first-
//! class [`Database`] — same catalog, scheme entries that are unions of the
//! covered originals — so the full PR-1/PR-2 planning stack (ladder, DP,
//! parallel search) applies to mid-query re-optimization unchanged.
//!
//! The mapping back is kept alongside: each derived leaf remembers which
//! original relations it covers, so plans found over the derived scheme can
//! be reported (and traced) in terms of the original query.

use mjoin_cost::Database;
use mjoin_guard::MjoinError;
use mjoin_hypergraph::{DbScheme, RelSet};
use mjoin_relation::Relation;

/// One base relation of a derived scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DerivedLeaf {
    /// An original relation, untouched so far.
    Base(usize),
    /// A materialized intermediate covering this set of original relations.
    Materialized(RelSet),
}

impl DerivedLeaf {
    /// The original relations this leaf covers.
    pub fn original_set(&self) -> RelSet {
        match self {
            DerivedLeaf::Base(i) => RelSet::singleton(*i),
            DerivedLeaf::Materialized(set) => *set,
        }
    }
}

/// A derived database plus the mapping from its leaves back to the
/// original query's relations.
#[derive(Clone, Debug)]
pub struct DerivedDatabase {
    /// The derived query: live intermediates and untouched originals as
    /// base relations, under the original catalog.
    pub db: Database,
    leaves: Vec<DerivedLeaf>,
}

impl DerivedDatabase {
    /// The derived leaves, index-aligned with `db`'s scheme.
    pub fn leaves(&self) -> &[DerivedLeaf] {
        &self.leaves
    }

    /// Original relations covered by derived leaf `i`.
    pub fn leaf_set(&self, i: usize) -> RelSet {
        self.leaves[i].original_set()
    }

    /// Maps a subset of derived leaves to the original relations it covers.
    pub fn original_set(&self, derived: RelSet) -> RelSet {
        let mut out = RelSet::empty();
        for i in derived.iter() {
            out = out.union(self.leaf_set(i));
        }
        out
    }
}

/// Builds the derived database for the rest of a partially-executed query.
///
/// `materialized` lists the live intermediates as `(covered originals,
/// state)` pairs; every original relation not covered stays a base leaf.
/// Leaf order is canonical — ascending by each leaf's lowest original
/// index — so re-planning is deterministic regardless of materialization
/// order.
///
/// Errors with [`MjoinError::InvalidScheme`] when the sets are empty,
/// overlap, or fall outside the scheme, and [`MjoinError::Internal`] when
/// a state's attributes disagree with the originals it claims to cover
/// (an executor bug, not a caller error).
pub fn derive_database(
    original: &Database,
    materialized: Vec<(RelSet, Relation)>,
) -> Result<DerivedDatabase, MjoinError> {
    let scheme = original.scheme();
    let full = scheme.full_set();
    let mut covered = RelSet::empty();
    for (set, rel) in &materialized {
        if set.is_empty() {
            return Err(MjoinError::InvalidScheme(
                "a materialized intermediate must cover at least one relation".into(),
            ));
        }
        if !set.is_subset_of(full) {
            return Err(MjoinError::InvalidScheme(format!(
                "materialized set {set:?} mentions relations outside the scheme"
            )));
        }
        if !covered.is_disjoint(*set) {
            return Err(MjoinError::InvalidScheme(format!(
                "materialized sets overlap at {:?}",
                covered.intersect(*set)
            )));
        }
        covered = covered.union(*set);
        if rel.scheme() != scheme.attrs_of(*set) {
            return Err(MjoinError::Internal(format!(
                "materialized state for {set:?} has the wrong attribute set"
            )));
        }
    }

    // Canonical leaf order: walk original indices ascending, emitting each
    // materialized leaf at its lowest member.
    let mut by_lowest: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (k, (set, _)) in materialized.iter().enumerate() {
        let lowest = set.first().expect("validated nonempty");
        by_lowest.insert(lowest, k);
    }
    let mut leaves = Vec::new();
    let mut schemes = Vec::new();
    let mut states = Vec::new();
    let mut slots: Vec<Option<(RelSet, Relation)>> =
        materialized.into_iter().map(Some).collect();
    for i in full.iter() {
        if let Some(&k) = by_lowest.get(&i) {
            let (set, rel) = slots[k].take().expect("each lowest index is unique");
            leaves.push(DerivedLeaf::Materialized(set));
            schemes.push(rel.scheme());
            states.push(rel);
        } else if !covered.contains(i) {
            leaves.push(DerivedLeaf::Base(i));
            schemes.push(scheme.scheme(i));
            states.push(original.state(i).clone());
        }
    }
    let derived_scheme = DbScheme::new(schemes)
        .map_err(|e| MjoinError::InvalidScheme(format!("derived scheme: {e}")))?;
    Ok(DerivedDatabase {
        db: Database::new(original.catalog().clone(), derived_scheme, states),
        leaves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{CardinalityOracle, ExactOracle};

    fn chain4() -> Database {
        Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 7], vec![6, 8]]),
            ("DE", vec![vec![7, 9], vec![8, 9]]),
        ])
        .unwrap()
    }

    #[test]
    fn derived_database_joins_to_the_same_result() {
        let db = chain4();
        let pair = RelSet::from_indices([1, 2]);
        let mid = db.evaluate_subset(pair);
        let derived = derive_database(&db, vec![(pair, mid)]).unwrap();
        // Leaves: AB, (BC ⋈ CD) at index of its lowest member, DE.
        assert_eq!(
            derived.leaves(),
            &[
                DerivedLeaf::Base(0),
                DerivedLeaf::Materialized(pair),
                DerivedLeaf::Base(3)
            ]
        );
        assert_eq!(derived.original_set(RelSet::from_indices([1, 2])), pair.union(RelSet::singleton(3)));
        // The derived query's full join equals the original's.
        assert_eq!(derived.db.evaluate(), db.evaluate());
        let mut o = ExactOracle::new(&derived.db);
        assert_eq!(o.tau(derived.db.scheme().full_set()), db.evaluate().tau());
    }

    #[test]
    fn canonical_leaf_order_ignores_materialization_order() {
        let db = chain4();
        let a = RelSet::from_indices([2, 3]);
        let b = RelSet::from_indices([0, 1]);
        let ra = db.evaluate_subset(a);
        let rb = db.evaluate_subset(b);
        let d1 = derive_database(&db, vec![(a, ra.clone()), (b, rb.clone())]).unwrap();
        let d2 = derive_database(&db, vec![(b, rb), (a, ra)]).unwrap();
        assert_eq!(d1.leaves(), d2.leaves());
        assert_eq!(d1.db.scheme().schemes(), d2.db.scheme().schemes());
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let db = chain4();
        let pair = RelSet::from_indices([1, 2]);
        let mid = db.evaluate_subset(pair);
        // Overlapping sets.
        let overlap = RelSet::from_indices([2, 3]);
        let r2 = db.evaluate_subset(overlap);
        let err =
            derive_database(&db, vec![(pair, mid.clone()), (overlap, r2)]).unwrap_err();
        assert!(matches!(err, MjoinError::InvalidScheme(_)), "{err:?}");
        // Wrong state for the claimed set.
        let err = derive_database(&db, vec![(RelSet::from_indices([0, 1]), mid)]).unwrap_err();
        assert!(matches!(err, MjoinError::Internal(_)), "{err:?}");
        // Empty set.
        let err = derive_database(&db, vec![(RelSet::empty(), db.state(0).clone())]).unwrap_err();
        assert!(matches!(err, MjoinError::InvalidScheme(_)), "{err:?}");
    }
}
