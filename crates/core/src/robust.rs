//! Budgeted optimization with graceful degradation.
//!
//! The exact optimizers are exponential: `O(3ⁿ)` for the bushy DP,
//! `(2n−3)!!` for exhaustive enumeration. Under a wall-clock deadline or a
//! memory cap they cannot always finish — but an optimizer that answers
//! "budget exceeded" with *nothing* is useless to a caller who still has a
//! query to run. This module provides the degradation ladder:
//!
//! 1. **Exhaustive** — enumerate every strategy in the space (small
//!    subsets only; the gold standard);
//! 2. **Dp** — the space's dynamic program;
//! 3. **LinDp** — IKKBZ-linearized interval DP: polynomial, bushy plans
//!    whose subtrees are contiguous in a precedence order, never worse
//!    than greedy-linear;
//! 4. **PartitionedDp** — exact DPccp inside ≤ k-relation blocks of the
//!    join graph, greedy recombination across the cuts;
//! 5. **Greedy** — the polynomial heuristic matching the space's shape;
//! 6. **Fallback** — an index-order left-deep strategy, valid by
//!    construction and computable without touching the data.
//!
//! Each rung gets a *slice* of the remaining budget; when a rung trips its
//! slice, the ladder records why and climbs down. The result is always
//! some valid strategy covering every relation, plus a
//! [`DegradationReport`] saying which rung answered and what happened to
//! the rungs above it.
//!
//! Only **budget** trips degrade. Cancellation ([`MjoinError::Cancelled`])
//! and internal faults ([`MjoinError::Internal`], which includes injected
//! faults) propagate immediately — degradation is for resource exhaustion,
//! not for masking bugs or overriding the user.

use std::fmt;
use std::time::{Duration, Instant};

use mjoin_cost::{CardinalityOracle, Database, ExactOracle, SharedOracle};
use mjoin_guard::{failpoints, Budget, CancelToken, Guard, MjoinError};
use mjoin_hypergraph::RelSet;
use mjoin_obs::{incr, span, Counter, Span};
use mjoin_optimizer::{
    try_best_avoid_cartesian_parallel, try_best_no_cartesian_parallel, try_greedy_bushy,
    try_greedy_linear, try_lindp, try_optimize, try_partitioned_dp, DpAlgorithm, Plan,
    SearchSpace,
};
use mjoin_strategy::{try_best_strategy_parallel, try_for_each_strategy, Strategy};

/// Largest subset the exhaustive rung will attempt: `(2·7 − 3)!! = 10 395`
/// strategies is instant, one more relation is 13× that.
pub const EXHAUSTIVE_MAX_RELS: usize = 7;

/// One level of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Exhaustive enumeration of the search space.
    Exhaustive,
    /// The space's dynamic program.
    Dp,
    /// IKKBZ-linearized interval DP: polynomial in `n`, bushy within a
    /// precedence order, never worse than greedy-linear.
    LinDp,
    /// Partitioned DPccp: exact within ≤ k-relation blocks, greedy
    /// recombination across the cuts.
    PartitionedDp,
    /// The greedy heuristic.
    Greedy,
    /// Index-order left-deep strategy, built without touching the data.
    Fallback,
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rung::Exhaustive => "exhaustive",
            Rung::Dp => "dp",
            Rung::LinDp => "lindp",
            Rung::PartitionedDp => "partdp",
            Rung::Greedy => "greedy",
            Rung::Fallback => "fallback",
        })
    }
}

/// Resources one rung consumed before answering, failing, or being
/// skipped: wall-clock elapsed plus the budget drawn from its guard.
/// All zero for rungs skipped without running.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RungStats {
    /// Wall time the rung ran for (a timing — not deterministic).
    pub elapsed: Duration,
    /// Memo entries charged to the rung's budget slice.
    pub memo_used: u64,
    /// Intermediate tuples charged to the rung's budget slice.
    pub tuples_used: u64,
}

/// What happened to one rung that did *not* answer.
#[derive(Clone, Debug)]
pub struct RungAttempt {
    /// The rung that was tried (or skipped).
    pub rung: Rung,
    /// Why it didn't answer — a budget error, an empty search space, or a
    /// skip note.
    pub outcome: String,
    /// What the attempt cost before it gave up (zero when skipped).
    pub stats: RungStats,
}

impl RungAttempt {
    fn skipped(rung: Rung, outcome: String) -> Self {
        RungAttempt {
            rung,
            outcome,
            stats: RungStats::default(),
        }
    }
}

/// Which rung answered, and why the ones above it didn't.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// The rung that produced the returned plan.
    pub answered_by: Rung,
    /// The rungs that failed or were skipped, in descending order.
    pub attempts: Vec<RungAttempt>,
    /// True when the plan is guaranteed τ-optimal within the requested
    /// space (the exhaustive or DP rung answered).
    pub optimal: bool,
    /// True when the plan is only guaranteed *valid* (covers every
    /// relation) but may leave the requested search space — the fallback
    /// rung ignores space restrictions, which can be unsatisfiable
    /// (product-free spaces over unconnected schemes).
    pub space_relaxed: bool,
    /// Resources the *answering* rung consumed.
    pub answered_stats: RungStats,
}

impl DegradationReport {
    fn clean(rung: Rung, attempts: Vec<RungAttempt>) -> Self {
        DegradationReport {
            answered_by: rung,
            attempts,
            optimal: matches!(rung, Rung::Exhaustive | Rung::Dp),
            space_relaxed: matches!(rung, Rung::Fallback),
            answered_stats: RungStats::default(),
        }
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "answered by {} rung", self.answered_by)?;
        if self.optimal {
            write!(f, " (optimal in space)")?;
        } else if self.space_relaxed {
            write!(f, " (valid, space restriction relaxed)")?;
        } else {
            write!(f, " (heuristic)")?;
        }
        for a in &self.attempts {
            write!(f, "; {} rung: {}", a.rung, a.outcome)?;
        }
        Ok(())
    }
}

/// A plan that survived the ladder, with the story of how it was obtained.
#[derive(Clone, Debug)]
pub struct RobustPlan {
    /// The chosen strategy and its cost. The cost is `u64::MAX` when even
    /// *costing* the fallback strategy exceeded the remaining budget — the
    /// strategy itself is still valid.
    pub plan: Plan,
    /// Which rung answered and why the ones above it didn't.
    pub report: DegradationReport,
}

/// Budget fractions: the exhaustive rung may use ¼ of the remaining
/// deadline, the DP rung ½ of what's left after that, greedy everything
/// that remains. Caps (memo entries, tuples) are per-rung.
fn rung_budget(total: &Budget, started: Instant, numer: u32, denom: u32) -> Option<Budget> {
    match total.deadline {
        None => Some(*total),
        Some(d) => {
            let rem = d.checked_sub(started.elapsed())?;
            if rem.is_zero() {
                return None;
            }
            Some(total.with_deadline(rem * numer / denom))
        }
    }
}

fn rung_guard(budget: Budget, cancel: Option<&CancelToken>) -> Guard {
    match cancel {
        Some(c) => Guard::with_cancel(budget, c.clone()),
        None => Guard::new(budget),
    }
}

/// Reads what a finished rung consumed: wall time since `started`, plus
/// the memo/tuple charges accumulated on its guard.
fn rung_stats(started: Instant, guard: &Guard) -> RungStats {
    RungStats {
        elapsed: started.elapsed(),
        memo_used: guard.memo_used(),
        tuples_used: guard.tuples_used(),
    }
}

/// Does `strategy` belong to `space`?
fn in_space(s: &Strategy, space: SearchSpace, scheme: &mjoin_hypergraph::DbScheme) -> bool {
    match space {
        SearchSpace::All => true,
        SearchSpace::Linear => s.is_linear(),
        SearchSpace::NoCartesian => !s.uses_cartesian(scheme),
        SearchSpace::LinearNoCartesian => s.is_linear() && !s.uses_cartesian(scheme),
        SearchSpace::AvoidCartesian => s.avoids_cartesian(scheme),
    }
}

/// Budget trips degrade; everything else propagates.
fn degradable(e: &MjoinError) -> bool {
    matches!(e, MjoinError::BudgetExceeded { .. })
}

/// A serve-mode brownout level: how aggressively an overloaded daemon
/// trades plan quality for optimization effort — Tay's central trade-off,
/// applied as admission policy. Each level maps to a ladder *entry rung*
/// (rungs above it are recorded as skipped, never attempted) plus a budget
/// transform that tightens the deadline and memo cap, so a browned-out
/// request is cheap by construction rather than by racing a timer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// No brownout: the full ladder with the caller's own budget.
    #[default]
    Normal,
    /// Skip exhaustive enumeration; enter at the DP rung with the deadline
    /// halved and the memo capped at 4096 entries.
    ReducedDp,
    /// Skip exhaustive and every DP rung (full, linearized, partitioned);
    /// enter at the greedy rung with the deadline quartered and the memo
    /// capped at 1024 entries.
    GreedyOnly,
}

impl BrownoutLevel {
    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::ReducedDp => "reduced-dp",
            BrownoutLevel::GreedyOnly => "greedy-only",
        }
    }

    /// Parses a wire/CLI name back into a level.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "normal" => Some(BrownoutLevel::Normal),
            "reduced-dp" => Some(BrownoutLevel::ReducedDp),
            "greedy-only" => Some(BrownoutLevel::GreedyOnly),
            _ => None,
        }
    }

    /// The highest ladder rung this level permits.
    pub fn entry_rung(self) -> Rung {
        match self {
            BrownoutLevel::Normal => Rung::Exhaustive,
            BrownoutLevel::ReducedDp => Rung::Dp,
            BrownoutLevel::GreedyOnly => Rung::Greedy,
        }
    }

    /// Tightens `budget` for this level. Caps only ever shrink: an
    /// existing deadline or memo cap below the level's own stays in force.
    pub fn apply(self, budget: Budget) -> Budget {
        let (denom, memo_cap) = match self {
            BrownoutLevel::Normal => return budget,
            BrownoutLevel::ReducedDp => (2, 4096u64),
            BrownoutLevel::GreedyOnly => (4, 1024u64),
        };
        let mut b = budget;
        if let Some(d) = b.deadline {
            b = b.with_deadline(d / denom);
        }
        let cap = b.max_memo_entries.map_or(memo_cap, |m| m.min(memo_cap));
        b.with_max_memo_entries(cap)
    }
}

impl fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn brownout_skip(rung: Rung, entry: Rung) -> RungAttempt {
    RungAttempt::skipped(
        rung,
        format!("skipped: brownout pinned the ladder entry at the {entry} rung"),
    )
}

/// The degradation ladder over an [`ExactOracle`].
///
/// Always returns a valid strategy covering `subset` (wrapped in a
/// [`RobustPlan`] naming the rung that produced it) unless the input
/// itself is invalid, the caller cancelled, or a fault was injected.
pub fn optimize_robust(
    db: &Database,
    subset: RelSet,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
) -> Result<RobustPlan, MjoinError> {
    optimize_robust_from(db, subset, space, budget, cancel, Rung::Exhaustive)
}

/// [`optimize_robust`] with a pinned entry rung: every rung above `entry`
/// is recorded as skipped (with a brownout note) and never attempted.
/// `Rung::Exhaustive` is the identity. This is the serve-mode brownout
/// hook — see [`BrownoutLevel::entry_rung`].
pub fn optimize_robust_from(
    db: &Database,
    subset: RelSet,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
    entry: Rung,
) -> Result<RobustPlan, MjoinError> {
    failpoints::hit("core::ladder")?;
    if subset.is_empty() {
        return Err(MjoinError::InvalidScheme(
            "cannot optimize the empty database".into(),
        ));
    }
    let _opt_span = span(Span::Optimize);
    let started = Instant::now();
    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut oracle = ExactOracle::new(db);
    let scheme = db.scheme().clone();

    // Rung 1: exhaustive enumeration (small subsets only).
    if entry > Rung::Exhaustive {
        attempts.push(brownout_skip(Rung::Exhaustive, entry));
    } else if subset.len() > EXHAUSTIVE_MAX_RELS {
        attempts.push(RungAttempt::skipped(
            Rung::Exhaustive,
            format!(
                "skipped: {} relations exceed the {}-relation enumeration cutoff",
                subset.len(),
                EXHAUSTIVE_MAX_RELS
            ),
        ));
    } else {
        match rung_budget(&budget, started, 1, 4) {
            None => attempts.push(RungAttempt::skipped(
                Rung::Exhaustive,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match exhaustive_rung(&mut oracle, subset, space, &guard) {
                    Ok(Some(plan)) => {
                        let mut report = DegradationReport::clean(Rung::Exhaustive, attempts);
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report })
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::Exhaustive,
                        outcome: format!("search space {space:?} is empty for this scheme"),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::Exhaustive,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 2: the space's DP.
    if entry > Rung::Dp {
        attempts.push(brownout_skip(Rung::Dp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
            None => attempts.push(RungAttempt::skipped(
                Rung::Dp,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match try_optimize(&mut oracle, subset, space, &guard) {
                    Ok(Some(plan)) => {
                        let mut report = DegradationReport::clean(Rung::Dp, attempts);
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report })
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::Dp,
                        outcome: format!("search space {space:?} is empty for this scheme"),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::Dp,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 3: IKKBZ-linearized interval DP — polynomial, and its result
    // is never costlier than greedy-linear's, so it strictly dominates
    // the linear half of the rung below. Like greedy, its plan may leave
    // a restricted space (it searches bushy product-free plans);
    // degradation relaxes optimality first, space membership second.
    if entry > Rung::LinDp {
        attempts.push(brownout_skip(Rung::LinDp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
            None => attempts.push(RungAttempt::skipped(
                Rung::LinDp,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match try_lindp(&mut oracle, subset, &guard) {
                    Ok(Some(plan)) => {
                        let relaxed = !in_space(&plan.strategy, space, &scheme);
                        let mut report = DegradationReport::clean(Rung::LinDp, attempts);
                        report.space_relaxed = relaxed;
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report });
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::LinDp,
                        outcome: "not applicable: the join graph of the subset is unconnected"
                            .into(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::LinDp,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 4: partitioned DPccp — exact within blocks, greedy across the
    // cuts. Subsumes plain DPccp when the subset fits one block.
    if entry > Rung::PartitionedDp {
        attempts.push(brownout_skip(Rung::PartitionedDp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
            None => attempts.push(RungAttempt::skipped(
                Rung::PartitionedDp,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match try_partitioned_dp(&mut oracle, subset, &guard) {
                    Ok(Some(plan)) => {
                        let relaxed = !in_space(&plan.strategy, space, &scheme);
                        let mut report =
                            DegradationReport::clean(Rung::PartitionedDp, attempts);
                        report.space_relaxed = relaxed;
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report });
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::PartitionedDp,
                        outcome: "not applicable: the join graph of the subset is unconnected"
                            .into(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::PartitionedDp,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 5: greedy, shaped to the space (linear spaces get the linear
    // heuristic). Note the greedy result may use products even in
    // product-free spaces — degradation relaxes optimality first, space
    // membership second.
    let linear_space = matches!(
        space,
        SearchSpace::Linear | SearchSpace::LinearNoCartesian
    );
    if entry > Rung::Greedy {
        attempts.push(brownout_skip(Rung::Greedy, entry));
    } else {
        match rung_budget(&budget, started, 1, 1) {
        None => attempts.push(RungAttempt::skipped(
            Rung::Greedy,
            "skipped: deadline already exhausted".into(),
        )),
        Some(b) => {
            let guard = rung_guard(b, cancel);
            oracle.rearm(guard.clone());
            incr(Counter::LadderRungsAttempted, 1);
            let _rung_span = span(Span::LadderRung);
            let rung_started = Instant::now();
            let result = if linear_space {
                try_greedy_linear(&mut oracle, subset, &guard)
            } else {
                try_greedy_bushy(&mut oracle, subset, &guard)
            };
            match result {
                Ok(plan) => {
                    let relaxed = !in_space(&plan.strategy, space, &scheme);
                    let mut report = DegradationReport::clean(Rung::Greedy, attempts);
                    report.space_relaxed = relaxed;
                    report.answered_stats = rung_stats(rung_started, &guard);
                    return Ok(RobustPlan { plan, report });
                }
                Err(e) if degradable(&e) => attempts.push(RungAttempt {
                    rung: Rung::Greedy,
                    outcome: e.to_string(),
                    stats: rung_stats(rung_started, &guard),
                }),
                Err(e) => return Err(e),
            }
        }
        }
    }

    // Rung 6: index-order left-deep — valid by construction, no data
    // access. Costing it is best-effort under whatever budget remains.
    let order: Vec<usize> = subset.iter().collect();
    let strategy = Strategy::left_deep(&order);
    incr(Counter::LadderRungsAttempted, 1);
    let _rung_span = span(Span::LadderRung);
    let rung_started = Instant::now();
    let (cost, stats) = match rung_budget(&budget, started, 1, 1) {
        None => (u64::MAX, RungStats::default()),
        Some(b) => {
            let guard = rung_guard(b, cancel);
            oracle.rearm(guard.clone());
            let cost = strategy.try_cost(&mut oracle).unwrap_or(u64::MAX);
            (cost, rung_stats(rung_started, &guard))
        }
    };
    let mut report = DegradationReport::clean(Rung::Fallback, attempts);
    report.answered_stats = stats;
    Ok(RobustPlan {
        plan: Plan { strategy, cost },
        report,
    })
}

/// Enumerates every strategy in the space, keeping the cheapest.
fn exhaustive_rung(
    oracle: &mut ExactOracle<'_>,
    subset: RelSet,
    space: SearchSpace,
    guard: &Guard,
) -> Result<Option<Plan>, MjoinError> {
    failpoints::hit("optimizer::exhaustive")?;
    let scheme = oracle.scheme().clone();
    let mut best: Option<Plan> = None;
    try_for_each_strategy(subset, guard, &mut |s: &Strategy| {
        incr(Counter::ExhaustiveStrategies, 1);
        if !in_space(s, space, &scheme) {
            return Ok(());
        }
        let cost = s.try_cost(&mut *oracle)?;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Plan {
                strategy: s.clone(),
                cost,
            });
        }
        Ok(())
    })?;
    Ok(best)
}

/// [`optimize_robust`] with a worker pool.
///
/// Every rung that can fan out does: exhaustive enumeration chunks the
/// top-level splits across `threads` scoped workers
/// ([`try_best_strategy_parallel`]), the product-free DP runs each
/// subset-size level in parallel ([`try_best_no_cartesian_parallel`], DPccp
/// enumeration), and materialization inside the shared oracle uses the
/// partitioned parallel hash join. All rungs share one [`SharedOracle`]
/// memo, re-armed with each rung's budget slice, so intermediates survive
/// degradation. `threads <= 1` delegates to the sequential ladder —
/// single-threaded behaviour is unchanged, byte for byte.
///
/// Each parallel rung is deterministic in itself: the same rung at the same
/// thread count ≥ 1 always returns bit-identical plans and costs. (The DP
/// rung enumerates with DPccp where the sequential ladder uses DPsub; the
/// two styles always agree on cost, and may tie-break equal-cost plans
/// differently.)
pub fn optimize_robust_threaded(
    db: &Database,
    subset: RelSet,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
    threads: usize,
) -> Result<RobustPlan, MjoinError> {
    optimize_robust_threaded_from(db, subset, space, budget, cancel, threads, Rung::Exhaustive)
}

/// [`optimize_robust_threaded`] with a pinned entry rung — the threaded
/// twin of [`optimize_robust_from`].
pub fn optimize_robust_threaded_from(
    db: &Database,
    subset: RelSet,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
    threads: usize,
    entry: Rung,
) -> Result<RobustPlan, MjoinError> {
    if threads <= 1 {
        return optimize_robust_from(db, subset, space, budget, cancel, entry);
    }
    failpoints::hit("core::ladder")?;
    if subset.is_empty() {
        return Err(MjoinError::InvalidScheme(
            "cannot optimize the empty database".into(),
        ));
    }
    let _opt_span = span(Span::Optimize);
    let started = Instant::now();
    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut oracle = SharedOracle::new(db).with_join_threads(threads);
    let scheme = db.scheme().clone();

    // Rung 1: parallel exhaustive enumeration (small subsets only).
    if entry > Rung::Exhaustive {
        attempts.push(brownout_skip(Rung::Exhaustive, entry));
    } else if subset.len() > EXHAUSTIVE_MAX_RELS {
        attempts.push(RungAttempt::skipped(
            Rung::Exhaustive,
            format!(
                "skipped: {} relations exceed the {}-relation enumeration cutoff",
                subset.len(),
                EXHAUSTIVE_MAX_RELS
            ),
        ));
    } else {
        match rung_budget(&budget, started, 1, 4) {
            None => attempts.push(RungAttempt::skipped(
                Rung::Exhaustive,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                let result = failpoints::hit("optimizer::exhaustive").and_then(|()| {
                    try_best_strategy_parallel(&oracle, subset, &guard, threads, &|s| {
                        in_space(s, space, &scheme)
                    })
                });
                match result {
                    Ok(Some((strategy, cost))) => {
                        let mut report = DegradationReport::clean(Rung::Exhaustive, attempts);
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan {
                            plan: Plan { strategy, cost },
                            report,
                        })
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::Exhaustive,
                        outcome: format!("search space {space:?} is empty for this scheme"),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::Exhaustive,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 2: the space's DP — level-parallel for the product-free spaces,
    // sequential over the shared memo for the rest.
    if entry > Rung::Dp {
        attempts.push(brownout_skip(Rung::Dp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
        None => attempts.push(RungAttempt::skipped(
            Rung::Dp,
            "skipped: deadline already exhausted".into(),
        )),
        Some(b) => {
            let guard = rung_guard(b, cancel);
            oracle.rearm(guard.clone());
            incr(Counter::LadderRungsAttempted, 1);
            let _rung_span = span(Span::LadderRung);
            let rung_started = Instant::now();
            let result = match space {
                SearchSpace::NoCartesian => try_best_no_cartesian_parallel(
                    &oracle,
                    subset,
                    DpAlgorithm::DpCcp,
                    &guard,
                    threads,
                ),
                SearchSpace::AvoidCartesian => try_best_avoid_cartesian_parallel(
                    &oracle,
                    subset,
                    DpAlgorithm::DpCcp,
                    &guard,
                    threads,
                ),
                _ => try_optimize(&mut oracle.handle(), subset, space, &guard),
            };
            match result {
                Ok(Some(plan)) => {
                    let mut report = DegradationReport::clean(Rung::Dp, attempts);
                    report.answered_stats = rung_stats(rung_started, &guard);
                    return Ok(RobustPlan { plan, report })
                }
                Ok(None) => attempts.push(RungAttempt {
                    rung: Rung::Dp,
                    outcome: format!("search space {space:?} is empty for this scheme"),
                    stats: rung_stats(rung_started, &guard),
                }),
                Err(e) if degradable(&e) => attempts.push(RungAttempt {
                    rung: Rung::Dp,
                    outcome: e.to_string(),
                    stats: rung_stats(rung_started, &guard),
                }),
                Err(e) => return Err(e),
            }
        }
        }
    }

    // Rungs 3–4: the polynomial large-query rungs. Both are sequential
    // algorithms (their work is O(n³) oracle arithmetic, not enumeration),
    // but they read and extend the shared memo through a handle, so
    // intermediates survive into the greedy rung. Running them on one
    // worker also keeps their answers bit-identical at every thread count.
    if entry > Rung::LinDp {
        attempts.push(brownout_skip(Rung::LinDp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
            None => attempts.push(RungAttempt::skipped(
                Rung::LinDp,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match try_lindp(&mut oracle.handle(), subset, &guard) {
                    Ok(Some(plan)) => {
                        let relaxed = !in_space(&plan.strategy, space, &scheme);
                        let mut report = DegradationReport::clean(Rung::LinDp, attempts);
                        report.space_relaxed = relaxed;
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report });
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::LinDp,
                        outcome: "not applicable: the join graph of the subset is unconnected"
                            .into(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::LinDp,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    if entry > Rung::PartitionedDp {
        attempts.push(brownout_skip(Rung::PartitionedDp, entry));
    } else {
        match rung_budget(&budget, started, 1, 2) {
            None => attempts.push(RungAttempt::skipped(
                Rung::PartitionedDp,
                "skipped: deadline already exhausted".into(),
            )),
            Some(b) => {
                let guard = rung_guard(b, cancel);
                oracle.rearm(guard.clone());
                incr(Counter::LadderRungsAttempted, 1);
                let _rung_span = span(Span::LadderRung);
                let rung_started = Instant::now();
                match try_partitioned_dp(&mut oracle.handle(), subset, &guard) {
                    Ok(Some(plan)) => {
                        let relaxed = !in_space(&plan.strategy, space, &scheme);
                        let mut report =
                            DegradationReport::clean(Rung::PartitionedDp, attempts);
                        report.space_relaxed = relaxed;
                        report.answered_stats = rung_stats(rung_started, &guard);
                        return Ok(RobustPlan { plan, report });
                    }
                    Ok(None) => attempts.push(RungAttempt {
                        rung: Rung::PartitionedDp,
                        outcome: "not applicable: the join graph of the subset is unconnected"
                            .into(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) if degradable(&e) => attempts.push(RungAttempt {
                        rung: Rung::PartitionedDp,
                        outcome: e.to_string(),
                        stats: rung_stats(rung_started, &guard),
                    }),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // Rung 5: greedy — inherently sequential, but it reads the shared memo
    // the parallel rungs populated.
    let linear_space = matches!(
        space,
        SearchSpace::Linear | SearchSpace::LinearNoCartesian
    );
    if entry > Rung::Greedy {
        attempts.push(brownout_skip(Rung::Greedy, entry));
    } else {
        match rung_budget(&budget, started, 1, 1) {
        None => attempts.push(RungAttempt::skipped(
            Rung::Greedy,
            "skipped: deadline already exhausted".into(),
        )),
        Some(b) => {
            let guard = rung_guard(b, cancel);
            oracle.rearm(guard.clone());
            incr(Counter::LadderRungsAttempted, 1);
            let _rung_span = span(Span::LadderRung);
            let rung_started = Instant::now();
            let mut handle = oracle.handle();
            let result = if linear_space {
                try_greedy_linear(&mut handle, subset, &guard)
            } else {
                try_greedy_bushy(&mut handle, subset, &guard)
            };
            match result {
                Ok(plan) => {
                    let relaxed = !in_space(&plan.strategy, space, &scheme);
                    let mut report = DegradationReport::clean(Rung::Greedy, attempts);
                    report.space_relaxed = relaxed;
                    report.answered_stats = rung_stats(rung_started, &guard);
                    return Ok(RobustPlan { plan, report });
                }
                Err(e) if degradable(&e) => attempts.push(RungAttempt {
                    rung: Rung::Greedy,
                    outcome: e.to_string(),
                    stats: rung_stats(rung_started, &guard),
                }),
                Err(e) => return Err(e),
            }
        }
        }
    }

    // Rung 6: index-order left-deep, costed best-effort.
    let order: Vec<usize> = subset.iter().collect();
    let strategy = Strategy::left_deep(&order);
    incr(Counter::LadderRungsAttempted, 1);
    let _rung_span = span(Span::LadderRung);
    let rung_started = Instant::now();
    let (cost, stats) = match rung_budget(&budget, started, 1, 1) {
        None => (u64::MAX, RungStats::default()),
        Some(b) => {
            let guard = rung_guard(b, cancel);
            oracle.rearm(guard.clone());
            let cost = strategy.try_cost(&mut oracle.handle()).unwrap_or(u64::MAX);
            (cost, rung_stats(rung_started, &guard))
        }
    };
    let mut report = DegradationReport::clean(Rung::Fallback, attempts);
    report.answered_stats = stats;
    Ok(RobustPlan {
        plan: Plan { strategy, cost },
        report,
    })
}

/// [`optimize_robust_threaded`] over a whole database.
pub fn optimize_database_robust_threaded(
    db: &Database,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
    threads: usize,
) -> Result<RobustPlan, MjoinError> {
    optimize_robust_threaded(db, db.scheme().full_set(), space, budget, cancel, threads)
}

/// [`optimize_robust`] over a whole database.
pub fn optimize_database_robust(
    db: &Database,
    space: SearchSpace,
    budget: Budget,
    cancel: Option<&CancelToken>,
) -> Result<RobustPlan, MjoinError> {
    optimize_robust(db, db.scheme().full_set(), space, budget, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_gen::data;

    #[test]
    fn unlimited_ladder_answers_at_the_top() {
        let db = data::paper_example4();
        let r = optimize_database_robust(&db, SearchSpace::All, Budget::unlimited(), None)
            .unwrap();
        assert_eq!(r.report.answered_by, Rung::Exhaustive);
        assert!(r.report.optimal);
        assert_eq!(r.plan.cost, 11);
    }

    #[test]
    fn ladder_matches_plain_dp() {
        let db = data::paper_example5();
        let robust =
            optimize_database_robust(&db, SearchSpace::NoCartesian, Budget::unlimited(), None)
                .unwrap();
        let plain = crate::optimize_database(&db, SearchSpace::NoCartesian).unwrap();
        assert_eq!(robust.plan.cost, plain.cost);
    }

    #[test]
    fn cancelled_ladder_propagates() {
        let db = data::paper_example5();
        let token = CancelToken::new();
        token.cancel();
        let err = optimize_database_robust(&db, SearchSpace::All, Budget::unlimited(), Some(&token))
            .unwrap_err();
        assert_eq!(err, MjoinError::Cancelled);
    }

    #[test]
    fn memo_cap_degrades_not_fails() {
        let db = data::paper_example5();
        let budget = Budget::unlimited().with_max_memo_entries(1);
        let r = optimize_database_robust(&db, SearchSpace::All, budget, None).unwrap();
        // The exhaustive and DP rungs can't run on one memo entry; some
        // lower rung must still answer with a valid covering strategy.
        assert!(r.report.answered_by > Rung::Dp, "{}", r.report);
        assert_eq!(r.plan.strategy.set(), db.scheme().full_set());
        assert!(r.plan.strategy.validate(db.scheme()));
        assert!(!r.report.attempts.is_empty());
    }

    #[test]
    fn ladder_failpoint_propagates() {
        let db = data::paper_example4();
        let _fp = failpoints::ScopedFailpoint::arm("core::ladder");
        let err = optimize_database_robust(&db, SearchSpace::All, Budget::unlimited(), None)
            .unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    #[test]
    fn threaded_ladder_matches_sequential_cost() {
        let db = data::paper_example4();
        let seq = optimize_database_robust(&db, SearchSpace::All, Budget::unlimited(), None)
            .unwrap();
        for threads in [1, 2, 4] {
            let par = optimize_database_robust_threaded(
                &db,
                SearchSpace::All,
                Budget::unlimited(),
                None,
                threads,
            )
            .unwrap();
            assert_eq!(par.report.answered_by, Rung::Exhaustive, "{threads} threads");
            assert_eq!(par.plan.cost, seq.plan.cost, "{threads} threads");
            assert_eq!(
                par.plan.strategy.canonical(),
                seq.plan.strategy.canonical(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn threaded_ladder_is_thread_count_invariant_per_rung() {
        // Force the exhaustive rung out of the picture so the parallel DP
        // answers, then check it agrees with itself at every thread count.
        let db = data::paper_example5();
        let two = optimize_database_robust_threaded(
            &db,
            SearchSpace::NoCartesian,
            Budget::unlimited(),
            None,
            2,
        )
        .unwrap();
        let four = optimize_database_robust_threaded(
            &db,
            SearchSpace::NoCartesian,
            Budget::unlimited(),
            None,
            4,
        )
        .unwrap();
        assert_eq!(two.plan.cost, four.plan.cost);
        assert_eq!(two.plan.strategy, four.plan.strategy);
        assert_eq!(two.report.answered_by, four.report.answered_by);
    }

    #[test]
    fn threaded_ladder_degrades_like_sequential() {
        let db = data::paper_example5();
        let budget = Budget::unlimited().with_max_memo_entries(1);
        let r = optimize_database_robust_threaded(&db, SearchSpace::All, budget, None, 4)
            .unwrap();
        assert!(r.report.answered_by > Rung::Dp, "{}", r.report);
        assert_eq!(r.plan.strategy.set(), db.scheme().full_set());
        assert!(r.plan.strategy.validate(db.scheme()));
    }

    #[test]
    fn threaded_ladder_propagates_cancellation() {
        let db = data::paper_example5();
        let token = CancelToken::new();
        token.cancel();
        let err = optimize_database_robust_threaded(
            &db,
            SearchSpace::All,
            Budget::unlimited(),
            Some(&token),
            4,
        )
        .unwrap_err();
        assert_eq!(err, MjoinError::Cancelled);
    }

    #[test]
    fn brownout_entry_pins_the_ladder() {
        let db = data::paper_example4();
        let full = db.scheme().full_set();
        for level in [
            BrownoutLevel::Normal,
            BrownoutLevel::ReducedDp,
            BrownoutLevel::GreedyOnly,
        ] {
            let r = optimize_robust_from(
                &db,
                full,
                SearchSpace::All,
                level.apply(Budget::unlimited()),
                None,
                level.entry_rung(),
            )
            .unwrap();
            assert_eq!(r.report.answered_by, level.entry_rung(), "{level}: {}", r.report);
            assert_eq!(r.plan.strategy.set(), full);
            assert!(r.plan.strategy.validate(db.scheme()));
            // Every rung above the entry is on record as a brownout skip.
            let skips = r
                .report
                .attempts
                .iter()
                .filter(|a| a.outcome.contains("brownout"))
                .count();
            let expected = match level {
                BrownoutLevel::Normal => 0,
                BrownoutLevel::ReducedDp => 1,
                // GreedyOnly skips exhaustive, dp, lindp and partdp.
                BrownoutLevel::GreedyOnly => 4,
            };
            assert_eq!(skips, expected, "{level}");
        }
    }

    #[test]
    fn brownout_entry_pins_the_threaded_ladder() {
        let db = data::paper_example4();
        let full = db.scheme().full_set();
        let r = optimize_robust_threaded_from(
            &db,
            full,
            SearchSpace::All,
            Budget::unlimited(),
            None,
            4,
            Rung::Greedy,
        )
        .unwrap();
        assert_eq!(r.report.answered_by, Rung::Greedy, "{}", r.report);
        assert!(r.plan.strategy.validate(db.scheme()));
    }

    #[test]
    fn brownout_budget_caps_only_shrink() {
        let tight = Budget::unlimited()
            .with_deadline(Duration::from_millis(100))
            .with_max_memo_entries(16);
        let b = BrownoutLevel::ReducedDp.apply(tight);
        assert_eq!(b.deadline, Some(Duration::from_millis(50)));
        assert_eq!(b.max_memo_entries, Some(16)); // tighter caller cap wins
        let loose = BrownoutLevel::GreedyOnly.apply(Budget::unlimited());
        assert_eq!(loose.deadline, None);
        assert_eq!(loose.max_memo_entries, Some(1024));
    }

    #[test]
    fn brownout_names_round_trip() {
        for level in [
            BrownoutLevel::Normal,
            BrownoutLevel::ReducedDp,
            BrownoutLevel::GreedyOnly,
        ] {
            assert_eq!(BrownoutLevel::parse(level.name()), Some(level));
        }
        assert_eq!(BrownoutLevel::parse("bogus"), None);
    }

    #[test]
    fn report_display_names_the_rung() {
        let db = data::paper_example4();
        let r = optimize_database_robust(&db, SearchSpace::All, Budget::unlimited(), None)
            .unwrap();
        assert!(r.report.to_string().contains("exhaustive"));
    }
}
