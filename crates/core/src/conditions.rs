//! The paper's conditions `C1`, `C1'`, `C2`, `C3`, `C4` as exhaustive,
//! oracle-driven checkers.
//!
//! Each condition universally quantifies over disjoint *connected* subsets
//! of the database scheme; the checkers enumerate exactly those subsets and
//! ask a [`CardinalityOracle`] for every `τ`. Complexity is cubic
//! (`C1`/`C1'`) or quadratic (`C2`/`C3`/`C4`) in the number of connected
//! subsets — exact and fine for the scheme sizes the theory experiments
//! use (`n ≲ 8`).

use std::fmt;

use mjoin_cost::CardinalityOracle;
use mjoin_hypergraph::RelSet;

/// One of the paper's conditions on a database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Condition {
    /// `C1`: for disjoint connected `E`, `E₁`, `E₂` with `E` linked to `E₁`
    /// but not to `E₂`: `τ(R_E ⋈ R_{E₁}) ≤ τ(R_E ⋈ R_{E₂})` — joining
    /// along a link never beats joining across a Cartesian product.
    C1,
    /// `C1'`: the strict form of `C1` (`<` instead of `≤`) — the hypothesis
    /// of Theorem 1.
    C1Strict,
    /// `C2`: for disjoint connected linked `E₁`, `E₂`:
    /// `τ(R_{E₁} ⋈ R_{E₂}) ≤ τ(R_{E₁})` **or** `… ≤ τ(R_{E₂})` — every
    /// linked join shrinks at least one side.
    C2,
    /// `C3`: both inequalities of `C2` — linked joins shrink *both* sides.
    /// The hypothesis of Theorem 3; satisfied when all joins are on
    /// superkeys.
    C3,
    /// `C4` (Section 5): linked joins *grow* both sides — satisfied by
    /// γ-acyclic pairwise-consistent databases.
    C4,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::C1 => write!(f, "C1"),
            Condition::C1Strict => write!(f, "C1'"),
            Condition::C2 => write!(f, "C2"),
            Condition::C3 => write!(f, "C3"),
            Condition::C4 => write!(f, "C4"),
        }
    }
}

/// A witness that a condition fails: the subsets and the `τ` values that
/// violate the required inequality.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated condition.
    pub condition: Condition,
    /// The quantified subsets: `[E, E₁, E₂]` for `C1`/`C1'`,
    /// `[E₁, E₂]` for the rest.
    pub witness: Vec<RelSet>,
    /// Human-readable inequality, e.g. `τ(E ⋈ E1) = 12 > 10 = τ(E ⋈ E2)`.
    pub detail: String,
}

/// Finds the first violation of `condition`, or `None` if it holds.
pub fn first_violation<O: CardinalityOracle>(
    oracle: &mut O,
    condition: Condition,
) -> Option<Violation> {
    let full = oracle.scheme().full_set();
    let connected = oracle.scheme().connected_subsets(full);
    match condition {
        Condition::C1 | Condition::C1Strict => {
            let strict = condition == Condition::C1Strict;
            for &e in &connected {
                for &e1 in &connected {
                    if !e.is_disjoint(e1) || !oracle.scheme().linked(e, e1) {
                        continue;
                    }
                    let linked_cost = oracle.tau_join(e, e1);
                    for &e2 in &connected {
                        if !e.is_disjoint(e2)
                            || !e1.is_disjoint(e2)
                            || oracle.scheme().linked(e, e2)
                        {
                            continue;
                        }
                        let product_cost = oracle.tau_join(e, e2);
                        let bad = if strict {
                            linked_cost >= product_cost
                        } else {
                            linked_cost > product_cost
                        };
                        if bad {
                            let op = if strict { "≥" } else { ">" };
                            return Some(Violation {
                                condition,
                                witness: vec![e, e1, e2],
                                detail: format!(
                                    "τ(E ⋈ E1) = {linked_cost} {op} {product_cost} = τ(E ⋈ E2)"
                                ),
                            });
                        }
                    }
                }
            }
            None
        }
        Condition::C2 | Condition::C3 | Condition::C4 => {
            for &e1 in &connected {
                for &e2 in &connected {
                    if e2.0 <= e1.0 && condition != Condition::C2 {
                        // C3/C4 are symmetric; check each unordered pair once.
                        continue;
                    }
                    if !e1.is_disjoint(e2) || !oracle.scheme().linked(e1, e2) {
                        continue;
                    }
                    let joined = oracle.tau_join(e1, e2);
                    let (t1, t2) = (oracle.tau(e1), oracle.tau(e2));
                    let bad = match condition {
                        Condition::C2 => joined > t1 && joined > t2,
                        Condition::C3 => joined > t1 || joined > t2,
                        Condition::C4 => joined < t1 || joined < t2,
                        _ => unreachable!(),
                    };
                    if bad {
                        return Some(Violation {
                            condition,
                            witness: vec![e1, e2],
                            detail: format!(
                                "τ(E1 ⋈ E2) = {joined}, τ(E1) = {t1}, τ(E2) = {t2}"
                            ),
                        });
                    }
                }
            }
            None
        }
    }
}

/// Does the database (as seen through `oracle`) satisfy `condition`?
pub fn satisfies<O: CardinalityOracle>(oracle: &mut O, condition: Condition) -> bool {
    first_violation(oracle, condition).is_none()
}

/// All five conditions at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct ConditionReport {
    pub c1: bool,
    pub c1_strict: bool,
    pub c2: bool,
    pub c3: bool,
    pub c4: bool,
}

/// Evaluates every condition.
pub fn condition_report<O: CardinalityOracle>(oracle: &mut O) -> ConditionReport {
    ConditionReport {
        c1: satisfies(oracle, Condition::C1),
        c1_strict: satisfies(oracle, Condition::C1Strict),
        c2: satisfies(oracle, Condition::C2),
        c3: satisfies(oracle, Condition::C3),
        c4: satisfies(oracle, Condition::C4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::ExactOracle;
    use mjoin_gen::data;

    #[test]
    fn example1_satisfies_c1_not_c2() {
        // Paper, Examples 1–2: the Example-1 database satisfies C1 but not
        // C2 (τ(R1 ⋈ R2) = 10 exceeds both τ(R1) = τ(R2) = 4).
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C1));
        let v = first_violation(&mut o, Condition::C2).expect("C2 fails");
        assert_eq!(v.condition, Condition::C2);
        assert_eq!(v.witness.len(), 2);
        assert!(!satisfies(&mut o, Condition::C3));
    }

    #[test]
    fn example2_satisfies_c2_not_c1() {
        // Paper, Example 2: C2 holds (τ(R1' ⋈ R2') = 7 < 8 = τ(R1')), C1
        // fails (τ(R2' ⋈ R1') = 7 > 6 = τ(R2' ⋈ R3')).
        let db = data::paper_example2();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C2));
        assert!(!satisfies(&mut o, Condition::C1));
        let v = first_violation(&mut o, Condition::C1).expect("C1 fails");
        assert_eq!(v.witness.len(), 3);
    }

    #[test]
    fn example3_satisfies_c1_not_c1_strict() {
        // Paper, Example 3: C1 holds but C1' does not.
        let db = data::paper_example3();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C1));
        assert!(!satisfies(&mut o, Condition::C1Strict));
    }

    #[test]
    fn example4_satisfies_c2_not_c1() {
        let db = data::paper_example4();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C2));
        assert!(!satisfies(&mut o, Condition::C1));
    }

    #[test]
    fn example5_satisfies_c1_c2_not_c3() {
        // Paper, Example 5: C1 and C2 hold, C3 fails
        // (τ(CI ⋈ ID) > τ(ID)).
        let db = data::paper_example5();
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C1));
        assert!(satisfies(&mut o, Condition::C2));
        assert!(!satisfies(&mut o, Condition::C3));
    }

    #[test]
    fn c3_implies_c1_and_c2_on_samples() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        for n in 2..5 {
            let (cat, d) = mjoin_gen::schemes::chain(n);
            let cfg = mjoin_gen::data::DataConfig {
                tuples_per_relation: 4,
                domain: 8,
                ensure_nonempty: true,
            };
            let (db, _) = data::superkey(cat, d, &cfg, &mut rng);
            let mut o = ExactOracle::new(&db);
            let r = condition_report(&mut o);
            assert!(r.c3, "superkey joins must give C3 (n={n})");
            assert!(r.c1, "C3 ⇒ C1 (Lemma 5)");
            assert!(r.c2, "C3 ⇒ C2");
        }
    }

    #[test]
    fn c4_on_consistent_acyclic_database() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(22);
        let (cat, d) = mjoin_gen::schemes::chain(3);
        assert!(d.is_gamma_acyclic());
        let db = data::universal(cat, d, 10, 3, &mut rng);
        let mut o = ExactOracle::new(&db);
        assert!(satisfies(&mut o, Condition::C4));
    }

    #[test]
    fn condition_display() {
        assert_eq!(Condition::C1.to_string(), "C1");
        assert_eq!(Condition::C1Strict.to_string(), "C1'");
        assert_eq!(Condition::C4.to_string(), "C4");
    }

    #[test]
    fn report_is_consistent_with_individual_checks() {
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        let r = condition_report(&mut o);
        assert_eq!(r.c1, satisfies(&mut o, Condition::C1));
        assert_eq!(r.c2, satisfies(&mut o, Condition::C2));
        assert!(!r.c3 || (r.c1 && r.c2), "C3 ⇒ C1 ∧ C2");
    }
}
