//! One-call façade: analyze a database against the whole paper.

use mjoin_cost::{CardinalityOracle, Database, ExactOracle};
use mjoin_guard::{Guard, MjoinError};
use mjoin_hypergraph::Acyclicity;
use mjoin_optimizer::{try_optimize, Plan, SearchSpace};

use crate::conditions::{condition_report, ConditionReport};
use crate::theorems::{theorem1, theorem2, theorem3, TheoremReport};

/// Everything the paper says about one concrete database.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Is the database scheme connected?
    pub connected: bool,
    /// Is `R_D ≠ φ` (the theorems' standing assumption)?
    pub result_nonempty: bool,
    /// The scheme's acyclicity degree (Section 5 context).
    pub acyclicity: Acyclicity,
    /// Which of `C1`, `C1'`, `C2`, `C3`, `C4` hold.
    pub conditions: ConditionReport,
    /// Theorem 1: preconditions and conclusion.
    pub theorem1: TheoremReport,
    /// Theorem 2: preconditions and conclusion.
    pub theorem2: TheoremReport,
    /// Theorem 3: preconditions and conclusion.
    pub theorem3: TheoremReport,
}

impl Analysis {
    /// The cheapest *safe* restriction the paper licenses for this
    /// database: the smallest search space still guaranteed (by the
    /// applicable theorem) to contain a τ-optimum strategy.
    pub fn safe_search_space(&self) -> SearchSpace {
        if self.theorem3.preconditions_hold {
            SearchSpace::LinearNoCartesian
        } else if self.theorem2.preconditions_hold {
            SearchSpace::NoCartesian
        } else {
            SearchSpace::All
        }
    }
}

/// Runs every checker in the crate against `db` (exact cardinalities).
///
/// Exponential in `|D|` — intended for the theory-scale databases the
/// paper's examples and experiments use (`n ≲ 8`). Infallible in practice
/// (the unlimited guard cannot trip), but shares the
/// [`analyze_guarded`] signature so callers handle one shape.
pub fn analyze(db: &Database) -> Result<Analysis, MjoinError> {
    analyze_guarded(db, &Guard::unlimited())
}

/// [`analyze`] under a budget: the oracle's materializations charge
/// `guard`, and each checker phase is separated by a trip check, so a
/// deadline interrupts the exponential sweep between (or within) phases.
pub fn analyze_guarded(db: &Database, guard: &Guard) -> Result<Analysis, MjoinError> {
    let mut oracle = ExactOracle::with_guard(db, guard.clone());
    let full = db.scheme().full_set();
    let result_nonempty = oracle.try_tau(full)? > 0;
    // The checkers use the infallible oracle surface (which saturates once
    // tripped), so surface the stored trip after each phase.
    let trip_check = |o: &ExactOracle<'_>| -> Result<(), MjoinError> {
        match o.tripped() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    };
    let conditions = condition_report(&mut oracle);
    trip_check(&oracle)?;
    let t1 = theorem1(&mut oracle);
    trip_check(&oracle)?;
    let t2 = theorem2(&mut oracle);
    trip_check(&oracle)?;
    let t3 = theorem3(&mut oracle);
    trip_check(&oracle)?;
    Ok(Analysis {
        connected: db.scheme().connected(full),
        result_nonempty,
        acyclicity: db.scheme().acyclicity(),
        conditions,
        theorem1: t1,
        theorem2: t2,
        theorem3: t3,
    })
}

/// Optimizes `db` over `space` with exact cardinalities.
///
/// [`MjoinError::InvalidScheme`] iff the space is empty for this scheme
/// (product-free spaces over unconnected schemes).
pub fn optimize_database(db: &Database, space: SearchSpace) -> Result<Plan, MjoinError> {
    optimize_database_guarded(db, space, &Guard::unlimited())
}

/// [`optimize_database`] under a budget.
pub fn optimize_database_guarded(
    db: &Database,
    space: SearchSpace,
    guard: &Guard,
) -> Result<Plan, MjoinError> {
    let mut oracle = ExactOracle::with_guard(db, guard.clone());
    match try_optimize(&mut oracle, db.scheme().full_set(), space, guard)? {
        Some(plan) => Ok(plan),
        None => Err(MjoinError::InvalidScheme(format!(
            "search space {space:?} is empty for this unconnected scheme"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_gen::data;

    #[test]
    fn analysis_of_example5() {
        let db = data::paper_example5();
        let a = analyze(&db).unwrap();
        assert!(a.connected);
        assert!(a.result_nonempty);
        assert!(a.conditions.c1 && a.conditions.c2 && !a.conditions.c3);
        assert!(a.theorem2.preconditions_hold);
        assert!(!a.theorem3.preconditions_hold);
        assert_eq!(a.safe_search_space(), SearchSpace::NoCartesian);
    }

    #[test]
    fn analysis_of_example1() {
        let db = data::paper_example1();
        let a = analyze(&db).unwrap();
        assert!(!a.connected);
        assert!(a.conditions.c1 && !a.conditions.c2);
        assert_eq!(a.safe_search_space(), SearchSpace::All);
    }

    #[test]
    fn safe_space_is_actually_safe_on_the_examples() {
        for db in [
            data::paper_example1(),
            data::paper_example3(),
            data::paper_example4(),
            data::paper_example5(),
        ] {
            let a = analyze(&db).unwrap();
            let safe = optimize_database(&db, a.safe_search_space())
                .expect("safe space is nonempty by construction");
            let best = optimize_database(&db, SearchSpace::All).expect("full space");
            assert_eq!(safe.cost, best.cost, "safe space missed the optimum");
        }
    }

    #[test]
    fn optimize_database_spaces() {
        let db = data::paper_example4();
        let best = optimize_database(&db, SearchSpace::All).unwrap();
        assert_eq!(best.cost, 11); // Example 4's S3
        let nocp = optimize_database(&db, SearchSpace::NoCartesian).unwrap();
        assert_eq!(nocp.cost, 12); // S2 is the best product-free strategy
    }
}
