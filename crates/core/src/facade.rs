//! One-call façade: analyze a database against the whole paper.

use mjoin_cost::{Database, ExactOracle};
use mjoin_hypergraph::Acyclicity;
use mjoin_optimizer::{optimize, Plan, SearchSpace};

use crate::conditions::{condition_report, ConditionReport};
use crate::theorems::{theorem1, theorem2, theorem3, TheoremReport};

/// Everything the paper says about one concrete database.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Is the database scheme connected?
    pub connected: bool,
    /// Is `R_D ≠ φ` (the theorems' standing assumption)?
    pub result_nonempty: bool,
    /// The scheme's acyclicity degree (Section 5 context).
    pub acyclicity: Acyclicity,
    /// Which of `C1`, `C1'`, `C2`, `C3`, `C4` hold.
    pub conditions: ConditionReport,
    /// Theorem 1: preconditions and conclusion.
    pub theorem1: TheoremReport,
    /// Theorem 2: preconditions and conclusion.
    pub theorem2: TheoremReport,
    /// Theorem 3: preconditions and conclusion.
    pub theorem3: TheoremReport,
}

impl Analysis {
    /// The cheapest *safe* restriction the paper licenses for this
    /// database: the smallest search space still guaranteed (by the
    /// applicable theorem) to contain a τ-optimum strategy.
    pub fn safe_search_space(&self) -> SearchSpace {
        if self.theorem3.preconditions_hold {
            SearchSpace::LinearNoCartesian
        } else if self.theorem2.preconditions_hold {
            SearchSpace::NoCartesian
        } else {
            SearchSpace::All
        }
    }
}

/// Runs every checker in the crate against `db` (exact cardinalities).
///
/// Exponential in `|D|` — intended for the theory-scale databases the
/// paper's examples and experiments use (`n ≲ 8`).
pub fn analyze(db: &Database) -> Analysis {
    let mut oracle = ExactOracle::new(db);
    let full = db.scheme().full_set();
    Analysis {
        connected: db.scheme().connected(full),
        result_nonempty: !db.evaluate().is_empty(),
        acyclicity: db.scheme().acyclicity(),
        conditions: condition_report(&mut oracle),
        theorem1: theorem1(&mut oracle),
        theorem2: theorem2(&mut oracle),
        theorem3: theorem3(&mut oracle),
    }
}

/// Optimizes `db` over `space` with exact cardinalities. `None` iff the
/// space is empty for this scheme (product-free spaces over unconnected
/// schemes).
pub fn optimize_database(db: &Database, space: SearchSpace) -> Option<Plan> {
    let mut oracle = ExactOracle::new(db);
    optimize(&mut oracle, db.scheme().full_set(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_gen::data;

    #[test]
    fn analysis_of_example5() {
        let db = data::paper_example5();
        let a = analyze(&db);
        assert!(a.connected);
        assert!(a.result_nonempty);
        assert!(a.conditions.c1 && a.conditions.c2 && !a.conditions.c3);
        assert!(a.theorem2.preconditions_hold);
        assert!(!a.theorem3.preconditions_hold);
        assert_eq!(a.safe_search_space(), SearchSpace::NoCartesian);
    }

    #[test]
    fn analysis_of_example1() {
        let db = data::paper_example1();
        let a = analyze(&db);
        assert!(!a.connected);
        assert!(a.conditions.c1 && !a.conditions.c2);
        assert_eq!(a.safe_search_space(), SearchSpace::All);
    }

    #[test]
    fn safe_space_is_actually_safe_on_the_examples() {
        for db in [
            data::paper_example1(),
            data::paper_example3(),
            data::paper_example4(),
            data::paper_example5(),
        ] {
            let a = analyze(&db);
            let safe = optimize_database(&db, a.safe_search_space())
                .expect("safe space is nonempty by construction");
            let best = optimize_database(&db, SearchSpace::All).expect("full space");
            assert_eq!(safe.cost, best.cost, "safe space missed the optimum");
        }
    }

    #[test]
    fn optimize_database_spaces() {
        let db = data::paper_example4();
        let best = optimize_database(&db, SearchSpace::All).unwrap();
        assert_eq!(best.cost, 11); // Example 4's S3
        let nocp = optimize_database(&db, SearchSpace::NoCartesian).unwrap();
        assert_eq!(nocp.cost, 12); // S2 is the best product-free strategy
    }
}
