//! The proof's strategy rewrites, made executable (Figures 3–6).
//!
//! Each theorem in the paper is proved by *surgically improving* a
//! hypothetical strategy. These functions perform those surgeries on real
//! strategies, so the experiments can replay the proofs step by step:
//!
//! * [`figure3_rewrite`] — Theorem 1's `T₁`/`T₂` moves: given a linear
//!   strategy that uses a Cartesian product, produce the alternative the
//!   proof compares against. Under `C1'` the alternative is strictly
//!   cheaper; under `C1`, no more expensive.
//! * [`lemma2_rewrite`] — Figure 4: merge a component of an unconnected
//!   root child into the connected sibling (never increases τ under `C1`,
//!   strictly decreases the root children's component count).
//! * [`lemma3_rewrite`] — Figure 5: same when both root children are
//!   unconnected, orientation chosen by the `C2` inequality.

use mjoin_cost::CardinalityOracle;
use mjoin_hypergraph::DbScheme;
use mjoin_strategy::Strategy;

/// Theorem 1's rewrite (Figure 3). For a **linear** strategy that uses a
/// Cartesian product over a **connected** scheme, locate the *last* step
/// `s = [E] ⋈ [R′]` using one (no ancestor of `s` uses a product), and
/// return:
///
/// * `T₁` — if `{R′}` is linked to the parent's leaf `{R″}`: pluck the
///   trivial strategy for `R′` and graft it above `R″`;
/// * `T₂` — otherwise (`E` must be linked to `{R″}`): exchange `R′` and
///   `R″`.
///
/// Returns `None` when the strategy is not linear or uses no product.
pub fn figure3_rewrite(scheme: &DbScheme, s: &Strategy) -> Option<Strategy> {
    if !s.is_linear() || !s.uses_cartesian(scheme) {
        return None;
    }
    // Steps are pre-order, so the first CP step we meet scanning from the
    // root is the one all of whose ancestors are product-free.
    let steps = s.steps();
    let cp = steps.iter().find(|st| st.uses_cartesian(scheme))?;
    // The CP step cannot be the root of a connected scheme's strategy; its
    // parent is the step whose child set equals cp.set.
    let parent = steps
        .iter()
        .find(|st| st.left == cp.set || st.right == cp.set)?;
    // Linear shape: the CP step joins [E] with a leaf [R'], and the
    // parent's other child is a leaf [R''].
    let (e, r_prime) = if cp.right.is_singleton() {
        (cp.left, cp.right)
    } else {
        (cp.right, cp.left)
    };
    let r_dprime = if parent.left == cp.set {
        parent.right
    } else {
        parent.left
    };
    debug_assert!(r_dprime.is_singleton(), "linear strategies join leaves");

    if scheme.linked(r_prime, r_dprime) {
        // T1: pluck R' and graft it above R''.
        let (rest, removed) = s.pluck(r_prime).ok()?;
        rest.graft(r_dprime, removed).ok()
    } else {
        // The paper's case analysis: R'' is linked to E ∪ {R'}; if not to
        // {R'}, then to E. T2: exchange R' and R''.
        debug_assert!(scheme.linked(e, r_dprime));
        s.swap(r_prime, r_dprime).ok()
    }
}

/// Lemma 2's rewrite (Figure 4). Requires `root(S) = [D₁] ⋈ [D₂]` with
/// `D₁` connected, `D₂` unconnected and linked to `D₁`, and the `D₂`
/// substrategy evaluating its components individually. Plucks a component
/// `E` of `D₂` linked to `D₁` and grafts it above `S_{D₁}`.
///
/// Returns `None` if the root shape doesn't match.
pub fn lemma2_rewrite(scheme: &DbScheme, s: &Strategy) -> Option<Strategy> {
    let steps = s.steps();
    let root = steps.first()?;
    // Identify which child is the connected one.
    let (d1, d2) = if scheme.connected(root.left) && !scheme.connected(root.right) {
        (root.left, root.right)
    } else if scheme.connected(root.right) && !scheme.connected(root.left) {
        (root.right, root.left)
    } else {
        return None;
    };
    if !scheme.linked(d1, d2) {
        return None;
    }
    let sub2 = s.substrategy(&s.find_node(d2)?).ok()?;
    if !sub2.evaluates_components_individually(scheme) {
        return None;
    }
    // A component of D2 linked to D1 exists because D1 is linked to D2.
    let e = scheme
        .components(d2)
        .into_iter()
        .find(|&c| scheme.linked(d1, c))?;
    let (rest, removed) = s.pluck(e).ok()?;
    rest.graft(d1, removed).ok()
}

/// Lemma 3's rewrite (Figure 5). Requires both root children unconnected,
/// linked, each substrategy evaluating components individually. Finds
/// linked components `E₁ ⊆ D₁`, `E₂ ⊆ D₂` and — oriented by the `C2`
/// inequality, as in the proof — plucks one and grafts it above the other.
pub fn lemma3_rewrite<O: CardinalityOracle>(
    oracle: &mut O,
    s: &Strategy,
) -> Option<Strategy> {
    let scheme = oracle.scheme().clone();
    let steps = s.steps();
    let root = steps.first()?;
    let (d1, d2) = (root.left, root.right);
    if scheme.connected(d1) || scheme.connected(d2) || !scheme.linked(d1, d2) {
        return None;
    }
    for sub in [d1, d2] {
        let subst = s.substrategy(&s.find_node(sub)?).ok()?;
        if !subst.evaluates_components_individually(&scheme) {
            return None;
        }
    }
    // Linked component pair.
    let (e1, e2) = scheme.components(d1).into_iter().find_map(|c1| {
        scheme
            .components(d2)
            .into_iter()
            .find(|&c2| scheme.linked(c1, c2))
            .map(|c2| (c1, c2))
    })?;
    // Orient by C2: pluck the component whose removal the inequality
    // licenses — if τ(E1 ⋈ E2) ≤ τ(E1), graft E2 above E1 (the proof's
    // "we may assume" branch); otherwise the symmetric move.
    let joined = oracle.tau_join(e1, e2);
    let (anchor, moved) = if joined <= oracle.tau(e1) {
        (e1, e2)
    } else {
        (e2, e1)
    };
    let (rest, removed) = s.pluck(moved).ok()?;
    rest.graft(anchor, removed).ok()
}

/// Lemma 6's transfers (Figure 6). For a product-free strategy whose root
/// joins two non-trivial substrategies `S_{D₁} = S_{D₁'} ⋈ S_{D₁''}` and
/// `S_{D₂} = S_{D₂'} ⋈ S_{D₂''}` with `D₁'` linked to `D₂'`, returns the
/// proof's two alternatives:
///
/// * `T₁` — pluck `S_{D₁'}` and graft it above `S_{D₂}`;
/// * `T₂` — pluck `S_{D₂'}` and graft it above `S_{D₁}`.
///
/// Under `C3`, if the input is τ-optimum among product-free strategies,
/// both transfers tie its cost — repeating them linearizes the strategy.
/// Returns `None` if the root shape doesn't match (a child is trivial, or
/// no linked grandchild pair exists).
pub fn lemma6_transfers(scheme: &DbScheme, s: &Strategy) -> Option<(Strategy, Strategy)> {
    let steps = s.steps();
    let root = steps.first()?;
    let (d1, d2) = (root.left, root.right);
    if d1.is_singleton() || d2.is_singleton() {
        return None;
    }
    // Children of D1 and D2.
    let kid = |d: mjoin_hypergraph::RelSet| -> Option<(mjoin_hypergraph::RelSet, mjoin_hypergraph::RelSet)> {
        let st = steps.iter().find(|st| st.set == d)?;
        Some((st.left, st.right))
    };
    let (d1a, d1b) = kid(d1)?;
    let (d2a, d2b) = kid(d2)?;
    // Pick a linked grandchild pair (the proof's "we may assume D1' is
    // linked to D2'").
    let (d1p, d2p) = [(d1a, d2a), (d1a, d2b), (d1b, d2a), (d1b, d2b)]
        .into_iter()
        .find(|&(x, y)| scheme.linked(x, y))?;
    let (rest1, moved1) = s.pluck(d1p).ok()?;
    let t1 = rest1.graft(d2, moved1).ok()?;
    let (rest2, moved2) = s.pluck(d2p).ok()?;
    let t2 = rest2.graft(d1, moved2).ok()?;
    Some((t1, t2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjoin_cost::{Database, ExactOracle};
    use mjoin_gen::data;
    use mjoin_strategy::enumerate_linear;

    #[test]
    fn figure3_rewrite_never_increases_cost_under_c1() {
        // Example 3's database satisfies C1 (not C1'): rewrites are
        // τ-nonincreasing.
        let db = data::paper_example3();
        let mut o = ExactOracle::new(&db);
        for s in enumerate_linear(db.scheme().full_set()) {
            if !s.uses_cartesian(db.scheme()) {
                assert!(figure3_rewrite(db.scheme(), &s).is_none());
                continue;
            }
            let t = figure3_rewrite(db.scheme(), &s).expect("CP linear strategy rewrites");
            assert!(t.validate(db.scheme()));
            assert_eq!(t.set(), s.set());
            assert!(t.cost(&mut o) <= s.cost(&mut o), "{}", s.render(db.catalog(), db.scheme()));
        }
    }

    #[test]
    fn figure3_rewrite_strictly_decreases_under_c1_strict() {
        // A superkey-join database satisfies C3 ⊂ C1; build one that also
        // satisfies C1' (strictness) — distinct key columns with different
        // sizes give strict inequalities.
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 0], vec![6, 1], vec![7, 2], vec![8, 3]]),
        ])
        .unwrap();
        let mut o = ExactOracle::new(&db);
        assert!(crate::satisfies(&mut o, crate::Condition::C1Strict));
        for s in enumerate_linear(db.scheme().full_set()) {
            if let Some(t) = figure3_rewrite(db.scheme(), &s) {
                assert!(
                    t.cost(&mut o) < s.cost(&mut o),
                    "{}",
                    s.render(db.catalog(), db.scheme())
                );
            }
        }
    }

    #[test]
    fn figure3_returns_none_on_clean_strategies() {
        let db = data::paper_example3();
        let clean = Strategy::left_deep(&[0, 1, 2]); // GS ⋈ SC ⋈ CL
        assert!(!clean.uses_cartesian(db.scheme()));
        assert!(figure3_rewrite(db.scheme(), &clean).is_none());
        // Bushy strategies are rejected too.
        let bushy = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::leaf(2),
        )
        .unwrap();
        assert!(bushy.is_linear()); // 3 relations: still linear actually
    }

    #[test]
    fn lemma2_rewrite_reduces_components_without_cost_increase() {
        // Example 1's scheme: {AB, BC, DE, FG}. Take root = [D1] ⋈ [D2]
        // with D1 = {AB} (connected) and D2 = {BC, DE, FG} — D2 is
        // unconnected with components {BC}, {DE}, {FG}, each a node of any
        // strategy that evaluates them individually.
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        let d2_strategy = Strategy::join(
            Strategy::join(Strategy::leaf(1), Strategy::leaf(2)).unwrap(),
            Strategy::leaf(3),
        )
        .unwrap();
        let s = Strategy::join(Strategy::leaf(0), d2_strategy).unwrap();
        let t = lemma2_rewrite(db.scheme(), &s).expect("shape matches Lemma 2");
        assert!(t.validate(db.scheme()));
        assert!(t.cost(&mut o) <= s.cost(&mut o));
        // Component count at the root decreased.
        let root_comps = |st: &Strategy| {
            let r = st.steps()[0];
            db.scheme().comp(r.left) + db.scheme().comp(r.right)
        };
        assert!(root_comps(&t) < root_comps(&s));
    }

    #[test]
    fn lemma3_rewrite_merges_across_unconnected_children() {
        // Scheme {AB, BC, DE, FG} again; root = [{AB, DE}] ⋈ [{BC, FG}]:
        // both children unconnected, linked through AB–BC.
        let db = data::paper_example1();
        let mut o = ExactOracle::new(&db);
        let left = Strategy::join(Strategy::leaf(0), Strategy::leaf(2)).unwrap();
        let right = Strategy::join(Strategy::leaf(1), Strategy::leaf(3)).unwrap();
        let s = Strategy::join(left, right).unwrap();
        let t = lemma3_rewrite(&mut o, &s).expect("shape matches Lemma 3");
        assert!(t.validate(db.scheme()));
        let root_comps = |st: &Strategy| {
            let r = st.steps()[0];
            db.scheme().comp(r.left) + db.scheme().comp(r.right)
        };
        assert!(root_comps(&t) < root_comps(&s));
    }

    #[test]
    fn lemma_rewrites_return_none_on_mismatched_shapes() {
        let db = data::paper_example3(); // connected scheme
        let mut o = ExactOracle::new(&db);
        let s = Strategy::left_deep(&[0, 1, 2]);
        assert!(lemma2_rewrite(db.scheme(), &s).is_none());
        assert!(lemma3_rewrite(&mut o, &s).is_none());
        // Lemma 6 needs both root children non-trivial.
        assert!(lemma6_transfers(db.scheme(), &s).is_none());
    }

    #[test]
    fn lemma6_transfers_preserve_optimal_cost_under_c3() {
        // A superkey chain of 4: C3 holds; the product-free optimum found
        // by DP may be bushy — both transfers must tie its cost, and
        // repeating transfers reaches a linear strategy of the same cost.
        let db = Database::from_specs(&[
            ("AB", vec![vec![1, 10], vec![2, 20], vec![3, 30]]),
            ("BC", vec![vec![10, 5], vec![20, 6]]),
            ("CD", vec![vec![5, 0], vec![6, 1], vec![7, 2], vec![8, 3]]),
            ("DE", vec![vec![0, 4], vec![1, 5]]),
        ])
        .unwrap();
        let mut o = ExactOracle::new(&db);
        assert!(crate::satisfies(&mut o, crate::Condition::C3));
        // Build the bushy product-free strategy (AB ⋈ BC) ⋈ (CD ⋈ DE) and
        // compare it against DP: under C3 it ties the linear optimum only
        // if it is itself optimal among product-free strategies; either
        // way the transfers must not *undercut* a τ-optimum.
        let bushy = Strategy::join(
            Strategy::left_deep(&[0, 1]),
            Strategy::left_deep(&[2, 3]),
        )
        .unwrap();
        let (t1, t2) = lemma6_transfers(db.scheme(), &bushy).expect("shape matches");
        for t in [&t1, &t2] {
            assert!(t.validate(db.scheme()));
            assert_eq!(t.set(), bushy.set());
            assert!(!t.uses_cartesian(db.scheme()), "transfers stay product-free");
        }
        // If bushy is optimal among product-free strategies, the transfers
        // tie it exactly (the Lemma 6 argument).
        let opt = mjoin_optimizer::optimize(
            &mut o,
            db.scheme().full_set(),
            mjoin_optimizer::SearchSpace::NoCartesian,
        )
        .unwrap()
        .cost;
        let bc = bushy.cost(&mut o);
        if bc == opt {
            assert_eq!(t1.cost(&mut o), bc);
            assert_eq!(t2.cost(&mut o), bc);
        } else {
            // Not optimal: transfers can only do as well or better or worse,
            // but they never break validity — already asserted above.
            assert!(t1.cost(&mut o) >= opt);
            assert!(t2.cost(&mut o) >= opt);
        }
    }
}
