//! # mjoin — On the Optimality of Strategies for Multiple Joins
//!
//! A faithful, executable reproduction of **Y. C. Tay, "On the Optimality
//! of Strategies for Multiple Joins"** (PODS 1990; JACM 40(5), 1993).
//!
//! The paper asks: when a query optimizer restricts its search to *linear*
//! strategies, to strategies *avoiding Cartesian products*, or both, under
//! what conditions does the restricted search still find a τ-optimum
//! strategy (τ = total tuples generated)? Its answers:
//!
//! * **Theorem 1** — under `C1'` (joins with linked subsets are *strictly*
//!   cheaper than Cartesian products), a linear strategy that is τ-optimum
//!   uses no Cartesian products.
//! * **Theorem 2** — under `C1 ∧ C2`, some τ-optimum strategy uses no
//!   Cartesian products.
//! * **Theorem 3** — under `C3` (joins never exceed either operand), some
//!   τ-optimum strategy is linear *and* product-free.
//!
//! This crate provides:
//!
//! * [`conditions`] — exhaustive, oracle-driven checkers for `C1`, `C1'`,
//!   `C2`, `C3` and the Section-5 condition `C4`;
//! * [`rewrites`] — the proof's tree surgeries (Figures 3–6) as executable
//!   strategy rewrites, so the theorems can be *demonstrated*, not just
//!   asserted;
//! * [`theorems`] — verifiers that check, for a concrete database, both
//!   each theorem's preconditions and its conclusion;
//! * [`Analysis`]/[`analyze`] — a one-call façade combining condition
//!   checking, theorem verification and subspace optimization.
//!
//! ```
//! use mjoin::{analyze, SearchSpace};
//! use mjoin_cost::Database;
//!
//! // A foreign-key chain: every join is on a key ⇒ C3 holds ⇒ a linear,
//! // product-free strategy is globally τ-optimum (Theorem 3).
//! let db = Database::from_specs(&[
//!     ("AB", vec![vec![1, 10], vec![2, 20]]),
//!     ("BC", vec![vec![10, 5], vec![20, 6]]),
//! ]).unwrap();
//! let analysis = analyze(&db).unwrap();
//! assert!(analysis.conditions.c3);
//! assert!(analysis.theorem3.preconditions_hold);
//! assert!(analysis.theorem3.conclusion_holds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod derived;
pub mod report;
pub mod rewrites;
pub mod robust;
pub mod store_io;
pub mod theorems;

mod facade;

pub use conditions::{condition_report, first_violation, satisfies, Condition, ConditionReport, Violation};
pub use derived::{derive_database, DerivedDatabase, DerivedLeaf};
pub use facade::{analyze, analyze_guarded, optimize_database, optimize_database_guarded, Analysis};
pub use report::{degradation_section, render_run_report};
pub use robust::{
    optimize_database_robust, optimize_database_robust_threaded, optimize_robust,
    optimize_robust_from, optimize_robust_threaded, optimize_robust_threaded_from,
    BrownoutLevel, DegradationReport, RobustPlan, Rung, RungAttempt, RungStats,
};
pub use theorems::{lemma1_check, lemma4_conclusion, lemma5_check, lemma6_check, theorem1, theorem2, theorem3, TheoremReport};

// One-stop re-exports of the workspace's public surface.
pub use mjoin_cost::{CardinalityOracle, Database, ExactOracle, NoisyOracle, SharedHandle, SharedOracle, SyncCardinalityOracle, SyntheticOracle};
pub use mjoin_guard::{failpoints, Budget, CancelToken, Guard, MjoinError, Resource};
pub use mjoin_hypergraph::{Acyclicity, DbScheme, JoinTree, RelSet};
pub use mjoin_query::{lower, parse_query, JoinEdge, LoweredQuery, Query};
pub use mjoin_optimizer::{best_bottleneck, best_monotone, bottleneck_of, exists_monotone, ikkbz, lindp, optimize, optimize_with, partitioned_dp, plan_from_memo, try_best_avoid_cartesian_parallel, try_best_no_cartesian_ccp_with_memo, try_best_no_cartesian_parallel, try_greedy_bushy, try_greedy_linear, try_ikkbz, try_lindp, try_optimize, try_optimize_with, try_partitioned_dp, try_partitioned_dp_with, DpAlgorithm, DpMemoExport, Monotonicity, Plan, SearchSpace, DEFAULT_BLOCK_MAX};
pub use mjoin_relation::{AttrSet, Attribute, Catalog, Relation, Value};
pub use mjoin_store::{fingerprint128, LoadedStore, StoreEntry};
pub use mjoin_strategy::{try_best_strategy_parallel, Strategy};
pub use store_io::{
    entry_from_optimize, memo_from_entry, optimize_fingerprint, plan_steps, save_optimize_entry,
    strategy_from_steps,
};
