//! Root package of the `mjoin` reproduction workspace.
//!
//! This crate only hosts the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The public API lives in the
//! [`mjoin`] facade crate and the per-subsystem crates it re-exports.

pub use mjoin;
